// Experiment E13 — serving-layer throughput. Part 1: queries/sec of the
// batch-parallel QueryMany at 1, 2, 4, 8 threads against the serial seam,
// on a warmed Engine (MostProbableNn over a 10k-point / 10k-query
// discrete batch; spiral-search backend). Queries are read-only and
// independent, so the speedup should track the participant count up to
// the physical core count. Also reports the QueryServer batched path
// (snapshot load + pool split) to show the serving front end adds no
// measurable overhead. Part 2: data sharding — per-shard build +
// warm time and merged-query throughput at 1, 2, 4, 8 shards
// (ShardedEngine, round-robin); construction cost is reported per shard
// in the --json output so BENCH_*.json tracks build scaling, not just
// qps. Merged answers are exact re-quantifications, so they may
// legitimately differ from the single spiral-search estimator within
// eps; a sampled check against the exact oracle validates them.
// Part 3: the snapshot-keyed result cache under a Zipf-skewed request
// stream (the repeated-query traffic caches exist for): batch throughput
// with the cache off vs on, the steady-state hit rate, per-request
// p50/p99 latency split by Response::source, and a sampled check that
// cache hits are bit-identical to recomputation on the same snapshot.
// Part 4: observability overhead — the bare batch path vs the QueryServer
// with obs idle (gated at <= 5% by CI bench-smoke) vs tracing + profiling
// forced on; with --metrics <path> the obs-on server's Prometheus
// exposition is written as a CI artifact.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "baselines/brute_force.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "obs/profile.h"
#include "serve/parallel.h"
#include "serve/query_server.h"
#include "serve/sharding.h"
#include "serve/thread_pool.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e13");

  const int n = args.tiny ? 1000 : 10000;
  const int num_queries = args.tiny ? 1000 : 10000;
  printf("E13: parallel QueryMany throughput (n=%d discrete points, %d "
         "MostProbableNn queries, hardware threads=%u)\n",
         n, num_queries, std::thread::hardware_concurrency());

  auto pts = workload::RandomDiscrete(n, 3, /*seed=*/13, /*spread=*/4.0);
  auto queries = bench::RandomQueries(num_queries, 30, 113);
  Engine engine(pts, {});
  const Engine::QuerySpec spec{Engine::QueryType::kMostProbableNn, 0.5, 1};

  bench::Timer tw;
  engine.Warmup(spec);
  double warmup_ms = tw.Ms();
  printf("warmup (spiral search build): %.1f ms\n\n", warmup_ms);

  // Serial baseline: the Engine's own loop, no pool involved.
  bench::Timer ts;
  auto serial = engine.QueryMany(queries, spec);
  double serial_ms = ts.Ms();
  double serial_qps = num_queries / (serial_ms / 1000.0);

  printf("%8s %12s %14s %10s\n", "threads", "batch_ms", "queries_per_s",
         "speedup");
  printf("%8d %12.1f %14.0f %10.2f\n", 1, serial_ms, serial_qps, 1.0);
  json.StartRow();
  json.Metric("threads", 1);
  json.Metric("warmup_ms", warmup_ms);
  json.Metric("batch_ms", serial_ms);
  json.Metric("qps", serial_qps);
  json.Metric("speedup", 1.0);

  for (int threads : {2, 4, 8}) {
    // `threads` participants total: threads - 1 pool workers + the caller.
    serve::ThreadPool pool(threads - 1);
    // One untimed pass to let the OS place the worker threads.
    serve::QueryMany(engine, queries, spec, &pool);
    bench::Timer tp;
    auto parallel = serve::QueryMany(engine, queries, spec, &pool);
    double ms = tp.Ms();
    double qps = num_queries / (ms / 1000.0);
    // Answers must be bit-identical to the serial run.
    size_t mismatches = 0;
    for (size_t i = 0; i < serial.size(); ++i) {
      if (parallel[i].nn != serial[i].nn) ++mismatches;
    }
    printf("%8d %12.1f %14.0f %10.2f%s\n", threads, ms, qps, qps / serial_qps,
           mismatches ? "  MISMATCH" : "");
    json.StartRow();
    json.Metric("threads", threads);
    json.Metric("batch_ms", ms);
    json.Metric("qps", qps);
    json.Metric("speedup", qps / serial_qps);
    json.Metric("mismatches", static_cast<double>(mismatches));
  }

  // The full serving front end: snapshot load + warm + shard.
  {
    serve::QueryServer server(
        std::make_shared<const Engine>(pts, Engine::Config{}),
        {.num_threads = 7, .warm = {Engine::QueryType::kMostProbableNn}});
    server.QueryBatch(queries, spec);  // Placement pass.
    bench::Timer tb;
    server.QueryBatch(queries, spec);
    double ms = tb.Ms();
    double qps = num_queries / (ms / 1000.0);
    printf("\nQueryServer::QueryBatch (8 participants): %.1f ms, %.0f "
           "queries/s\n",
           ms, qps);
    json.StartRow();
    json.Metric("server_batch_ms", ms);
    json.Metric("server_qps", qps);
  }

  // Part 2: data sharding. Shard engines are built (and warmed) one by
  // one so construction cost is attributable per shard.
  printf("\nShardedEngine (round-robin, 8 query participants):\n");
  printf("%8s %14s %14s %14s %10s\n", "shards", "build_ms_max",
         "build_ms_total", "queries_per_s", "speedup");
  // The exact reference distribution is shard-independent: compute the
  // sampled oracle once, outside the shard sweep.
  const int sample = std::min(num_queries, 200);
  std::vector<std::vector<double>> exact_sample(sample);
  for (int i = 0; i < sample; ++i) {
    exact_sample[i] = baselines::QuantificationProbabilities(pts, queries[i]);
  }
  for (int shards : {1, 2, 4, 8}) {
    auto parts = serve::PartitionPoints(
        pts, {shards, serve::Partitioning::kRoundRobin});
    std::vector<std::shared_ptr<const Engine>> engines;
    std::vector<double> build_ms;
    for (const auto& ids : parts) {
      std::vector<core::UncertainPoint> subset;
      subset.reserve(ids.size());
      for (int gid : ids) subset.push_back(pts[gid]);
      bench::Timer tb;
      auto e = std::make_shared<const Engine>(std::move(subset),
                                              Engine::Config{});
      e->Warmup(spec);
      build_ms.push_back(tb.Ms());
      engines.push_back(std::move(e));
    }
    double build_total = 0.0, build_max = 0.0;
    for (double ms : build_ms) {
      build_total += ms;
      build_max = std::max(build_max, ms);
    }
    serve::ShardedEngine sharded(std::move(engines), std::move(parts));

    serve::ThreadPool pool(7);
    serve::QueryMany(sharded, queries, spec, &pool);  // Placement pass.
    bench::Timer tq;
    auto merged = serve::QueryMany(sharded, queries, spec, &pool);
    double ms = tq.Ms();
    double qps = num_queries / (ms / 1000.0);

    // Sampled exactness: the merged most-probable NN must be within
    // 2 eps of optimal under the exact distribution.
    size_t violations = 0;
    for (int i = 0; i < sample; ++i) {
      const auto& exact = exact_sample[i];
      double best = *std::max_element(exact.begin(), exact.end());
      if (merged[i].nn < 0 ||
          exact[merged[i].nn] < best - 2 * Engine::Config{}.eps) {
        ++violations;
      }
    }

    printf("%8d %14.1f %14.1f %14.0f %10.2f%s\n", shards, build_max,
           build_total, qps, qps / serial_qps,
           violations ? "  SAMPLED-CHECK-FAILED" : "");
    json.StartRow();
    json.Metric("shards", shards);
    json.Metric("shard_build_ms_total", build_total);
    json.Metric("shard_build_ms_max", build_max);
    for (size_t s = 0; s < build_ms.size(); ++s) {
      json.Metric("shard" + std::to_string(s) + "_build_ms", build_ms[s]);
    }
    json.Metric("sharded_batch_ms", ms);
    json.Metric("sharded_qps", qps);
    json.Metric("sharded_speedup", qps / serial_qps);
    // Per-query merged latency at this shard count: the number the
    // quantification index (E14) drives down by making the per-shard
    // envelope/survival hooks sublinear.
    json.Metric("sharded_query_latency_ms",
                ms / static_cast<double>(num_queries));
    json.Metric("sampled_violations", static_cast<double>(violations));
  }

  // Part 3: result cache under Zipf-skewed traffic.
  {
    const int universe = args.tiny ? 200 : 1000;
    const int stream_n = args.tiny ? 4000 : 20000;
    const double alpha = 1.0;
    auto zipf = workload::ZipfIndices(stream_n, universe, alpha, 77);
    std::vector<serve::Request> stream(stream_n);
    for (int i = 0; i < stream_n; ++i) {
      stream[i].q = queries[zipf[i]];
      stream[i].spec = spec;
    }
    printf("\nResult cache, Zipf(alpha=%.1f) stream (%d requests over %d "
           "distinct points):\n",
           alpha, stream_n, universe);

    serve::QueryServer::Options off;
    off.num_threads = 7;
    off.warm = {spec.type};
    serve::QueryServer::Options on = off;
    on.cache.max_bytes = 64u << 20;

    auto engine_ptr = std::make_shared<const Engine>(pts, Engine::Config{});

    serve::QueryServer no_cache(engine_ptr, off);
    no_cache.QueryBatch(stream);  // Placement pass.
    bench::Timer t_off;
    no_cache.QueryBatch(stream);
    double off_ms = t_off.Ms();

    serve::QueryServer cached(engine_ptr, on);
    bench::Timer t_cold;
    cached.QueryBatch(stream);  // Cold pass: every distinct point misses.
    double cold_ms = t_cold.Ms();
    auto mid = cached.stats();
    bench::Timer t_warm;
    auto warm_responses = cached.QueryBatch(stream);
    double warm_ms = t_warm.Ms();
    auto after = cached.stats();

    double warm_hits =
        static_cast<double>(after.cache.hits - mid.cache.hits);
    double hit_rate = warm_hits / stream_n;
    double speedup = off_ms / warm_ms;
    printf("  cache off: %.1f ms   cache cold: %.1f ms   cache warm: %.1f "
           "ms (hit rate %.3f, speedup %.2fx)\n",
           off_ms, cold_ms, warm_ms, hit_rate, speedup);

    // Per-request latency split by source, measured on the Submit path
    // of a fresh cache-enabled server (so the Zipf stream produces both
    // misses and hits); each future is awaited before the next submit,
    // so latencies are uncontended per-request costs, exact rather than
    // histogram-bucketed.
    serve::QueryServer probe_server(engine_ptr, on);
    const int probe_n = std::min(stream_n, args.tiny ? 1000 : 5000);
    std::vector<double> hit_us, computed_us;
    for (int i = 0; i < probe_n; ++i) {
      serve::Response r = probe_server.Submit(stream[i]).get();
      double us = static_cast<double>(r.latency.count());
      if (r.source == serve::ResultSource::kCache) {
        hit_us.push_back(us);
      } else if (r.source == serve::ResultSource::kComputed) {
        computed_us.push_back(us);
      }
    }
    auto pct = [](std::vector<double>& v, double p) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      size_t i = static_cast<size_t>(p * (v.size() - 1));
      return v[i];
    };
    double hit_p50 = pct(hit_us, 0.50), hit_p99 = pct(hit_us, 0.99);
    double comp_p50 = pct(computed_us, 0.50),
           comp_p99 = pct(computed_us, 0.99);
    printf("  submit latency: cache-hit p50 %.1f us / p99 %.1f us (%zu), "
           "computed p50 %.1f us / p99 %.1f us (%zu)\n",
           hit_p50, hit_p99, hit_us.size(), comp_p50, comp_p99,
           computed_us.size());

    // Bit-identity: a sampled prefix of warm-pass answers must equal a
    // fresh computation on the same snapshot, field for field.
    auto snap = cached.sharded_snapshot();
    size_t identity_mismatches = 0;
    const int identity_sample = std::min(stream_n, 200);
    for (int i = 0; i < identity_sample; ++i) {
      std::span<const Vec2> one(&stream[i].q, 1);
      Engine::QueryResult fresh = snap->QueryMany(one, spec)[0];
      const Engine::QueryResult& served = warm_responses[i].result;
      if (fresh.nn != served.nn || fresh.ranked != served.ranked ||
          fresh.ids != served.ids) {
        ++identity_mismatches;
      }
    }
    printf("  bit-identity sample (%d requests): %zu mismatches%s\n",
           identity_sample, identity_mismatches,
           identity_mismatches ? "  MISMATCH" : "");

    const auto& lat = after.latency(spec.type);
    json.StartRow();
    json.Metric("zipf_alpha", alpha);
    json.Metric("zipf_universe", universe);
    json.Metric("zipf_stream", stream_n);
    json.Metric("cache_off_ms", off_ms);
    json.Metric("cache_cold_ms", cold_ms);
    json.Metric("cache_warm_ms", warm_ms);
    json.Metric("cache_hit_rate", hit_rate);
    json.Metric("cache_speedup", speedup);
    json.Metric("cache_entries", static_cast<double>(after.cache.entries));
    json.Metric("cache_bytes", static_cast<double>(after.cache.bytes));
    json.Metric("hit_p50_us", hit_p50);
    json.Metric("hit_p99_us", hit_p99);
    json.Metric("computed_p50_us", comp_p50);
    json.Metric("computed_p99_us", comp_p99);
    json.Metric("server_hist_p50_us", lat.p50_us);
    json.Metric("server_hist_p99_us", lat.p99_us);
    json.Metric("identity_mismatches",
                static_cast<double>(identity_mismatches));
  }

  // Part 4: observability overhead. The obs layer's contract is that the
  // disabled mode costs nothing measurable: every span site is one null
  // test and every traversal hook one relaxed load. Three configurations
  // over the same warmed snapshot and query batch, best-of-R to shave
  // scheduler noise: the bare batch path with no serving front end
  // (baseline), the QueryServer with observability idle (obs off — the
  // default production shape; CI gates its overhead at <= 5%), and the
  // QueryServer with per-request tracing, the slow-query log and
  // traversal profiling all forced on (obs on — the debugging shape,
  // reported but ungated).
  {
    auto engine_ptr = std::make_shared<const Engine>(pts, Engine::Config{});
    engine_ptr->Warmup(spec);
    const int reps = 5;

    auto best_of = [&](auto&& run) {
      run();  // Placement pass.
      double best = -1.0;
      for (int r = 0; r < reps; ++r) {
        bench::Timer t;
        run();
        double ms = t.Ms();
        if (best < 0 || ms < best) best = ms;
      }
      return best;
    };

    serve::ThreadPool pool(7);
    double baseline_ms = best_of(
        [&] { serve::QueryMany(*engine_ptr, queries, spec, &pool); });

    serve::QueryServer::Options off_opts;
    off_opts.num_threads = 7;
    off_opts.warm = {spec.type};
    serve::QueryServer obs_off(engine_ptr, off_opts);
    double off_ms = best_of([&] { obs_off.QueryBatch(queries, spec); });

    serve::QueryServer::Options on_opts = off_opts;
    on_opts.slow_query_threshold = std::chrono::microseconds(1);
    serve::QueryServer obs_on(engine_ptr, on_opts);
    obs::EnableTraversalProfiling(true);
    double on_ms = best_of([&] { obs_on.QueryBatch(queries, spec); });
    // Exercise the instrumented merge hooks so the dump below carries
    // traversal counters alongside the serving metrics.
    for (int i = 0; i < 32; ++i) {
      obs_on.sharded_snapshot()->shard(0).MaxDistEnvelope(queries[i]);
    }
    obs::EnableTraversalProfiling(false);

    double off_overhead = off_ms / baseline_ms;
    double on_overhead = on_ms / baseline_ms;
    printf("\nObservability overhead (best of %d, %d queries):\n", reps,
           num_queries);
    printf("  baseline (no server) %.1f ms   obs off %.1f ms (%.3fx)   "
           "obs on %.1f ms (%.3fx)\n",
           baseline_ms, off_ms, off_overhead, on_ms, on_overhead);
    json.StartRow();
    json.Metric("obs_baseline_ms", baseline_ms);
    json.Metric("obs_off_ms", off_ms);
    json.Metric("obs_on_ms", on_ms);
    json.Metric("obs_off_overhead", off_overhead);
    json.Metric("obs_on_overhead", on_overhead);
    json.Metric("slow_queries_logged",
                static_cast<double>(obs_on.SlowQueries().size()));

    bench::WriteMetricsDump(args.metrics_path, obs_on.DumpMetrics());
  }

  json.Write(args.json_path);
  return 0;
}
