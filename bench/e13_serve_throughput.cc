// Experiment E13 — serving-layer throughput: queries/sec of the sharded
// parallel QueryMany at 1, 2, 4, 8 threads against the serial seam, on a
// warmed Engine (MostProbableNn over a 10k-point / 10k-query discrete
// batch; spiral-search backend). Queries are read-only and independent,
// so the speedup should track the participant count up to the physical
// core count. Also reports the QueryServer batched path (snapshot load +
// pool shard) to show the serving front end adds no measurable overhead.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "engine/engine.h"
#include "serve/parallel.h"
#include "serve/query_server.h"
#include "serve/thread_pool.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e13");

  const int n = args.tiny ? 1000 : 10000;
  const int num_queries = args.tiny ? 1000 : 10000;
  printf("E13: parallel QueryMany throughput (n=%d discrete points, %d "
         "MostProbableNn queries, hardware threads=%u)\n",
         n, num_queries, std::thread::hardware_concurrency());

  auto pts = workload::RandomDiscrete(n, 3, /*seed=*/13, /*spread=*/4.0);
  auto queries = bench::RandomQueries(num_queries, 30, 113);
  Engine engine(pts, {});
  const Engine::QuerySpec spec{Engine::QueryType::kMostProbableNn, 0.5, 1};

  bench::Timer tw;
  engine.Warmup(spec);
  double warmup_ms = tw.Ms();
  printf("warmup (spiral search build): %.1f ms\n\n", warmup_ms);

  // Serial baseline: the Engine's own loop, no pool involved.
  bench::Timer ts;
  auto serial = engine.QueryMany(queries, spec);
  double serial_ms = ts.Ms();
  double serial_qps = num_queries / (serial_ms / 1000.0);

  printf("%8s %12s %14s %10s\n", "threads", "batch_ms", "queries_per_s",
         "speedup");
  printf("%8d %12.1f %14.0f %10.2f\n", 1, serial_ms, serial_qps, 1.0);
  json.StartRow();
  json.Metric("threads", 1);
  json.Metric("warmup_ms", warmup_ms);
  json.Metric("batch_ms", serial_ms);
  json.Metric("qps", serial_qps);
  json.Metric("speedup", 1.0);

  for (int threads : {2, 4, 8}) {
    // `threads` participants total: threads - 1 pool workers + the caller.
    serve::ThreadPool pool(threads - 1);
    // One untimed pass to let the OS place the worker threads.
    serve::QueryMany(engine, queries, spec, &pool);
    bench::Timer tp;
    auto parallel = serve::QueryMany(engine, queries, spec, &pool);
    double ms = tp.Ms();
    double qps = num_queries / (ms / 1000.0);
    // Answers must be bit-identical to the serial run.
    size_t mismatches = 0;
    for (size_t i = 0; i < serial.size(); ++i) {
      if (parallel[i].nn != serial[i].nn) ++mismatches;
    }
    printf("%8d %12.1f %14.0f %10.2f%s\n", threads, ms, qps, qps / serial_qps,
           mismatches ? "  MISMATCH" : "");
    json.StartRow();
    json.Metric("threads", threads);
    json.Metric("batch_ms", ms);
    json.Metric("qps", qps);
    json.Metric("speedup", qps / serial_qps);
    json.Metric("mismatches", static_cast<double>(mismatches));
  }

  // The full serving front end: snapshot load + warm + shard.
  {
    serve::QueryServer server(
        std::make_shared<const Engine>(pts, Engine::Config{}),
        {.num_threads = 7, .warm = {Engine::QueryType::kMostProbableNn}});
    server.QueryBatch(queries, spec);  // Placement pass.
    bench::Timer tb;
    server.QueryBatch(queries, spec);
    double ms = tb.Ms();
    double qps = num_queries / (ms / 1000.0);
    printf("\nQueryServer::QueryBatch (8 participants): %.1f ms, %.0f "
           "queries/s\n",
           ms, qps);
    json.StartRow();
    json.Metric("server_batch_ms", ms);
    json.Metric("server_qps", qps);
  }

  json.Write(args.json_path);
  return 0;
}
