// Experiment E2 — Theorem 2.7 / Figure 5: the Omega(n^3) lower-bound
// construction (two flanks of huge disks + a column of unit disks). Every
// triple (i, j, k), i,j <= n/4, k <= n/2, contributes two vertices, so the
// predicted count is 2 (n/4)^2 (n/2) = n^3/16.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e02");
  printf("E2: Omega(n^3) construction (Theorem 2.7, Figure 5)\n");
  printf("%6s %12s %14s %10s %12s\n", "n", "mu(verts)", "predicted",
         "ratio", "build_ms");
  std::vector<std::pair<double, double>> growth;
  auto sizes =
      bench::Sweep<int>(args.tiny, {8, 16}, {8, 16, 24, 32, 40, 48});
  for (int n : sizes) {
    auto pts = workload::LowerBoundCubic(n, /*seed=*/1);
    int m = n / 4;
    // All interesting vertices live near the y-axis channel.
    core::NonzeroVoronoiOptions opts;
    opts.window = geom::Box{{-60.0, -4.0 * m - 12.0}, {60.0, 4.0 * m + 12.0}};
    bench::Timer t;
    core::NonzeroVoronoi vd(pts, opts);
    double predicted = 2.0 * m * m * (2 * m);
    long long mu = vd.stats().arrangement_vertices;
    printf("%6d %12lld %14.0f %10.2f %12.1f\n", n, mu, predicted,
           mu / predicted, t.Ms());
    json.StartRow();
    json.Metric("n", n);
    json.Metric("mu", static_cast<double>(mu));
    json.Metric("predicted", predicted);
    json.Metric("build_ms", t.Ms());
    growth.push_back({static_cast<double>(n), static_cast<double>(mu)});
  }
  printf("measured growth exponent: %.2f (theory: 3.0)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
