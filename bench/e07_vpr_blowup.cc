// Experiment E7 — Theorem 4.2 / Lemma 4.1 / Figure 9: the exact
// probabilistic Voronoi diagram has Theta(N^4) complexity — buildable only
// for tiny inputs, which is the paper's motivation for the approximation
// algorithms of Sections 4.2/4.3.

#include <cstdio>

#include "bench_util.h"
#include "core/vpr_diagram.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e07");
  printf("E7: exact VPr diagram blowup (Theorem 4.2, Lemma 4.1, Figure 9)\n");
  printf("%6s %6s %12s %12s %12s %12s\n", "n", "N=nk", "bisectors",
         "crossings", "faces", "build_ms");
  std::vector<std::pair<double, double>> growth;
  auto sizes = bench::Sweep<int>(args.tiny, {2, 3}, {2, 3, 4, 5, 6});
  for (int n : sizes) {
    auto pts = workload::LowerBoundVprQuartic(n, /*seed=*/3);
    bench::Timer t;
    core::VprDiagram vpr(pts);
    const auto& st = vpr.stats();
    int big_n = 2 * n;
    printf("%6d %6d %12d %12lld %12d %12.1f\n", n, big_n, st.num_bisectors,
           static_cast<long long>(st.crossings), st.bounded_faces, t.Ms());
    json.StartRow();
    json.Metric("n", n);
    json.Metric("N", big_n);
    json.Metric("bisectors", st.num_bisectors);
    json.Metric("crossings", static_cast<double>(st.crossings));
    json.Metric("faces", st.bounded_faces);
    json.Metric("build_ms", t.Ms());
    growth.push_back({static_cast<double>(big_n),
                      static_cast<double>(st.bounded_faces)});
  }
  printf("measured face-count growth exponent vs N: %.2f (theory: 4.0)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
