// Experiment E11 — Lemma 2.2 / Figures 2-4: gamma_i is a polar lower
// envelope with at most 2n breakpoints, computable in O(n log n); the
// breakpoint bound holds on every instance and the build time fits
// n log n.

#include <cstdio>

#include <random>

#include "bench_util.h"
#include "envelope/polar_envelope.h"
#include "geom/trig.h"
#include "workload/generators.h"

using namespace unn;
using geom::FocalConic;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e11");
  printf("E11: gamma_i envelope size and build time (Lemma 2.2)\n");
  printf("%8s %14s %10s %12s %14s\n", "n", "breakpoints", "<=2n", "arcs",
         "build_ms");
  // Ring workload: n-1 disks at near-identical distance around disk 0, so
  // (almost) every gamma_0j contributes an envelope arc — the regime the
  // 2n bound is about. Random far-spread inputs produce O(1)-size
  // envelopes instead.
  std::vector<std::pair<double, double>> growth;
  std::mt19937_64 rng(21);
  auto sizes =
      bench::Sweep<int>(args.tiny, {64, 256}, {64, 256, 1024, 4096});
  for (int n : sizes) {
    std::uniform_real_distribution<double> jit(-0.05, 0.05);
    std::vector<std::optional<FocalConic>> curves(n);
    geom::Vec2 center{0, 0};
    for (int j = 1; j < n; ++j) {
      double ang = geom::kTwoPi * j / (n - 1.0);
      geom::Vec2 cj = geom::UnitVec(ang) * (10.0 + jit(rng));
      curves[j] = FocalConic::DistanceDifference(center, cj, 1.0 + jit(rng));
    }
    bench::Timer t;
    auto env = envelope::PolarEnvelope::Compute(curves);
    double ms = t.Ms();
    printf("%8d %14d %10s %12d %14.2f\n", n, env.NumBreakpoints(),
           env.NumBreakpoints() <= 2 * n ? "yes" : "NO", env.NumCurveArcs(),
           ms);
    json.StartRow();
    json.Metric("n", n);
    json.Metric("breakpoints", env.NumBreakpoints());
    json.Metric("arcs", env.NumCurveArcs());
    json.Metric("build_ms", ms);
    growth.push_back({static_cast<double>(n), ms});
  }
  printf("measured time growth exponent: %.2f (theory: ~1 + o(1), n log n)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
