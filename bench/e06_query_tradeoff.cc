// Experiment E6 — Theorem 2.11 vs Theorem 3.1: the V!=0 point-location
// structure answers NN!=0 queries fastest but its size can blow up (cubic
// worst case); the near-linear index trades a slightly slower query for
// O(n) space; the O(n) brute-force scan anchors the comparison.

#include <cstdio>

#include "baselines/brute_force.h"
#include "bench_util.h"
#include "core/nn_nonzero_index.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e06");
  printf("E6: NN!=0 query structures (Thm 2.11 diagram vs Thm 3.1 index vs "
         "brute force)\n");
  printf("%6s %14s %14s %14s %14s %14s %12s\n", "n", "diagram_ms",
         "diag_query_us", "index_query_us", "brute_query_us", "diagram_mu",
         "label_nodes");
  auto sizes = bench::Sweep<int>(args.tiny, {50}, {50, 200, 800});
  int num_queries = args.tiny ? 200 : 2000;
  for (int n : sizes) {
    auto pts = workload::RandomDisks(n, /*seed=*/5);
    double extent = std::sqrt(static_cast<double>(n)) * 2.5;
    auto queries = bench::RandomQueries(num_queries, extent, 99);

    double diagram_build = -1, diag_q = -1;
    long long mu = -1, label_nodes = -1;
    if (n <= 200) {  // The diagram's O(n^3) construction is the point here.
      bench::Timer tb;
      core::NonzeroVoronoi vd(pts);
      diagram_build = tb.Ms();
      mu = vd.stats().arrangement_vertices;
      label_nodes = vd.stats().label_nodes;
      bench::Timer tq;
      size_t sink = 0;
      for (auto q : queries) sink += vd.Query(q).size();
      diag_q = tq.Ms() * 1000.0 / queries.size();
      if (sink == 0) printf("");
    }

    core::NnNonzeroIndex ix(pts);
    bench::Timer ti;
    size_t sink = 0;
    for (auto q : queries) sink += ix.Query(q).size();
    double index_q = ti.Ms() * 1000.0 / queries.size();

    bench::Timer tbr;
    for (auto q : queries) sink += baselines::NonzeroNn(pts, q).size();
    double brute_q = tbr.Ms() * 1000.0 / queries.size();
    if (sink == 0) printf("");

    printf("%6d %14.1f %14.2f %14.2f %14.2f %14lld %12lld\n", n,
           diagram_build, diag_q, index_q, brute_q, mu, label_nodes);
    json.StartRow();
    json.Metric("n", n);
    json.Metric("diagram_build_ms", diagram_build);
    json.Metric("diagram_query_us", diag_q);
    json.Metric("index_query_us", index_q);
    json.Metric("brute_query_us", brute_q);
    json.Metric("diagram_mu", static_cast<double>(mu));
    json.Metric("label_nodes", static_cast<double>(label_nodes));
  }
  printf("(both structures beat the O(n) scan and stay flat in n; on random "
         "inputs the O(n)-space index even outruns the diagram, whose value "
         "is the O(log n + t) guarantee plus the complexity statistics; the "
         "diagram's superlinear size/build cost is visible in diagram_ms and "
         "diagram_mu)\n");
  return json.Write(args.json_path) ? 0 : 1;
}
