#ifndef UNN_BENCH_BENCH_UTIL_H_
#define UNN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "geom/vec2.h"

/// \file bench_util.h
/// Shared helpers for the experiment drivers (E1..E13). Each driver prints
/// a self-contained table; EXPERIMENTS.md records the paper's expectation
/// next to these measurements. Every driver also understands three flags:
///   --tiny          shrink the input sweep (the CI bench-smoke job);
///   --json <path>   additionally write the measurements as JSON — the
///                   BENCH_pr.json artifact that seeds the perf trajectory.
///                   Every document is stamped with provenance (git_sha,
///                   build_type, wall-clock time) so artifacts stay
///                   attributable across PRs;
///   --metrics <path> drivers that stand up a QueryServer write its
///                   Prometheus DumpMetrics() exposition here (e13).

namespace unn {
namespace bench {

/// Picks the --tiny sweep or the full sweep.
template <class T>
std::vector<T> Sweep(bool tiny, std::vector<T> small, std::vector<T> full) {
  return tiny ? std::move(small) : std::move(full);
}

/// Shared driver command line (see file comment).
struct Args {
  bool tiny = false;
  std::string json_path;
  std::string metrics_path;
};

inline Args ParseArgs(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s == "--tiny") {
      a.tiny = true;
    } else if (s == "--json" && i + 1 < argc) {
      a.json_path = argv[++i];
    } else if (s.rfind("--json=", 0) == 0) {
      a.json_path = s.substr(7);
    } else if (s == "--metrics" && i + 1 < argc) {
      a.metrics_path = argv[++i];
    } else if (s.rfind("--metrics=", 0) == 0) {
      a.metrics_path = s.substr(10);
    }
  }
  return a;
}

/// Build provenance baked in by CMake (bench targets only); "unknown"
/// when built outside the repo's own build (e.g. a tarball checkout).
inline const char* GitSha() {
#ifdef UNN_GIT_SHA
  return UNN_GIT_SHA;
#else
  return "unknown";
#endif
}

inline const char* BuildType() {
#ifdef UNN_BUILD_TYPE
  return (UNN_BUILD_TYPE)[0] != '\0' ? UNN_BUILD_TYPE : "unknown";
#else
  return "unknown";
#endif
}

/// Writes the Prometheus exposition text to `path`; no-op when empty.
inline bool WriteMetricsDump(const std::string& path,
                             const std::string& text) {
  if (path.empty()) return true;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "WriteMetricsDump: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

/// Collects named measurements row by row and serializes them as
///   {"experiment": "e01", "rows": [{"n": 8, "build_ms": 1.5}, ...]}
/// so CI can diff benchmark runs across PRs.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string experiment)
      : experiment_(std::move(experiment)) {}

  void StartRow() { rows_.emplace_back(); }

  void Metric(const std::string& key, double value) {
    if (rows_.empty()) rows_.emplace_back();
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof buf, "%.17g", value);
    } else {
      std::snprintf(buf, sizeof buf, "null");
    }
    rows_.back().push_back({key, buf});
  }

  /// A string-valued field (e.g. which structure a row measures). The
  /// value must not need JSON escaping (labels only).
  void Str(const std::string& key, const std::string& value) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().push_back({key, "\"" + value + "\""});
  }

  std::string ToJson() const {
    std::string out = "{\"experiment\": \"" + experiment_ + "\",";
    out += " \"git_sha\": \"" + std::string(GitSha()) + "\",";
    out += " \"build_type\": \"" + std::string(BuildType()) + "\",";
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "%lld",
                  static_cast<long long>(
                      std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()));
    out += " \"unix_time_ms\": " + std::string(stamp) + ",";
    out += " \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "  {";
      for (size_t m = 0; m < rows_[r].size(); ++m) {
        if (m > 0) out += ", ";
        out += "\"" + rows_[r][m].first + "\": " + rows_[r][m].second;
      }
      out += "}";
    }
    out += "\n]}\n";
    return out;
  }

  /// Writes the JSON to `path`; no-op when `path` is empty. Returns false
  /// (after warning on stderr) when the file cannot be written.
  bool Write(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonEmitter: cannot write %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::string experiment_;
  /// Per row: (key, already-serialized JSON value).
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Least-squares slope of log(y) vs log(x): the measured growth exponent.
inline double LogLogSlope(const std::vector<std::pair<double, double>>& xy) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (auto [x, y] : xy) {
    if (x <= 0 || y <= 0) continue;
    double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline std::vector<geom::Vec2> RandomQueries(int count, double extent,
                                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-extent, extent);
  std::vector<geom::Vec2> qs(count);
  for (auto& q : qs) q = {u(rng), u(rng)};
  return qs;
}

}  // namespace bench
}  // namespace unn

#endif  // UNN_BENCH_BENCH_UTIL_H_
