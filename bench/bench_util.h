#ifndef UNN_BENCH_BENCH_UTIL_H_
#define UNN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "geom/vec2.h"

/// \file bench_util.h
/// Shared helpers for the experiment drivers (E1..E12). Each driver prints
/// a self-contained table; EXPERIMENTS.md records the paper's expectation
/// next to these measurements.

namespace unn {
namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Ms() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Least-squares slope of log(y) vs log(x): the measured growth exponent.
inline double LogLogSlope(const std::vector<std::pair<double, double>>& xy) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (auto [x, y] : xy) {
    if (x <= 0 || y <= 0) continue;
    double lx = std::log(x), ly = std::log(y);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline std::vector<geom::Vec2> RandomQueries(int count, double extent,
                                             uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-extent, extent);
  std::vector<geom::Vec2> qs(count);
  for (auto& q : qs) q = {u(rng), u(rng)};
  return qs;
}

}  // namespace bench
}  // namespace unn

#endif  // UNN_BENCH_BENCH_UTIL_H_
