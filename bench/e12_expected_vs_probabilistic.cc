// Experiment E12 — Section 1.2 / paper I [AESZ12] / [YTX+10]: the
// expected-distance NN increasingly disagrees with the most-probable NN as
// uncertainty grows — the paper's motivation for quantification
// probabilities over expected distances.

#include <cstdio>

#include "bench_util.h"
#include "core/expected_nn.h"
#include "core/monte_carlo_pnn.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e12");
  printf("E12: expected-NN vs most-probable-NN disagreement (paper I "
         "variant, [YTX+10] critique)\n");
  printf("%14s %16s\n", "radius_scale", "disagreement_%%");
  auto scales = bench::Sweep<double>(args.tiny, {0.5, 2.0},
                                     {0.1, 0.5, 1.0, 2.0, 4.0});
  for (double scale : scales) {
    auto pts = workload::RandomDisks(20, /*seed=*/31, 10.0, 0.05 * scale,
                                     2.0 * scale);
    core::ExpectedNn enn(pts);
    core::MonteCarloPnnOptions opts;
    opts.s_override = args.tiny ? 400 : 2000;
    core::MonteCarloPnn mc(pts, opts);
    int disagree = 0;
    auto queries = bench::RandomQueries(args.tiny ? 60 : 300, 12, 43);
    for (auto q : queries) {
      int expected_nn = enn.QuerySquared(q);
      auto est = mc.Query(q);
      int most_probable = -1;
      double best = -1;
      for (auto [id, p] : est) {
        if (p > best) {
          best = p;
          most_probable = id;
        }
      }
      if (expected_nn != most_probable) ++disagree;
    }
    printf("%14.1f %15.1f%%\n", scale,
           100.0 * disagree / static_cast<double>(queries.size()));
    json.StartRow();
    json.Metric("radius_scale", scale);
    json.Metric("disagreement_pct",
                100.0 * disagree / static_cast<double>(queries.size()));
  }
  printf("(disagreement grows with the uncertainty radius — expected "
         "distance is a poor summary under large uncertainty)\n");
  return json.Write(args.json_path) ? 0 : 1;
}
