// Experiment E10 — Theorem 3.2: the near-linear discrete NN!=0 index
// (group SEB branch-and-bound + lifted circular reporting) vs the O(N)
// scan. Query time grows sublinearly in N = nk, matching the sqrt(N)-type
// bound's shape.

#include <cstdio>

#include "baselines/brute_force.h"
#include "bench_util.h"
#include "core/nn_nonzero_discrete_index.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e10");
  printf("E10: discrete NN!=0 index vs brute force (Theorem 3.2), k=4\n");
  printf("%8s %8s %14s %14s %14s %10s\n", "n", "N", "build_ms",
         "index_query_us", "brute_query_us", "speedup");
  std::vector<std::pair<double, double>> growth;
  auto sizes =
      bench::Sweep<int>(args.tiny, {125, 500}, {125, 500, 2000, 8000});
  for (int n : sizes) {
    auto pts = workload::RandomDiscrete(n, 4, /*seed=*/12);
    double extent = std::sqrt(static_cast<double>(n)) * 2.5;
    auto queries = bench::RandomQueries(args.tiny ? 100 : 1000, extent, 41);
    bench::Timer tb;
    core::NnNonzeroDiscreteIndex ix(pts);
    double build = tb.Ms();
    size_t sink = 0;
    bench::Timer ti;
    for (auto q : queries) sink += ix.Query(q).size();
    double index_us = ti.Ms() * 1000 / queries.size();
    bench::Timer tbr;
    for (auto q : queries) sink += baselines::NonzeroNn(pts, q).size();
    double brute_us = tbr.Ms() * 1000 / queries.size();
    if (sink == 0) printf("");
    printf("%8d %8d %14.1f %14.2f %14.2f %9.1fx\n", n, 4 * n, build, index_us,
           brute_us, brute_us / index_us);
    json.StartRow();
    json.Metric("n", n);
    json.Metric("N", 4 * n);
    json.Metric("build_ms", build);
    json.Metric("index_query_us", index_us);
    json.Metric("brute_query_us", brute_us);
    growth.push_back({static_cast<double>(4 * n), index_us});
  }
  printf("measured query-time growth exponent vs N: %.2f (sublinear; brute "
         "force is 1.0)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
