// Experiment E3 — Theorem 2.8 / Figure 6: Omega(n^3) vertices even with
// equal-radius disks; at least one vertex per triple (i, j, k) in
// (n/3)^3.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e03");
  printf("E3: Omega(n^3) equal-radius construction (Theorem 2.8, Figure 6)\n");
  printf("%6s %12s %14s %10s %12s\n", "n", "mu(verts)", "m^3", "ratio",
         "build_ms");
  std::vector<std::pair<double, double>> growth;
  auto sizes =
      bench::Sweep<int>(args.tiny, {9, 15}, {9, 15, 21, 27, 33, 39});
  for (int n : sizes) {
    auto pts = workload::LowerBoundCubicEqualRadius(n, /*seed=*/1);
    bench::Timer t;
    core::NonzeroVoronoi vd(pts);
    int m = n / 3;
    double predicted = static_cast<double>(m) * m * m;
    long long mu = vd.stats().arrangement_vertices;
    printf("%6d %12lld %14.0f %10.2f %12.1f\n", n, mu, predicted,
           mu / predicted, t.Ms());
    json.StartRow();
    json.Metric("n", n);
    json.Metric("mu", static_cast<double>(mu));
    json.Metric("predicted", predicted);
    json.Metric("build_ms", t.Ms());
    growth.push_back({static_cast<double>(n), static_cast<double>(mu)});
  }
  printf("measured growth exponent: %.2f (theory: 3.0)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
