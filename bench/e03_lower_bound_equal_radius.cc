// Experiment E3 — Theorem 2.8 / Figure 6: Omega(n^3) vertices even with
// equal-radius disks; at least one vertex per triple (i, j, k) in
// (n/3)^3.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main() {
  printf("E3: Omega(n^3) equal-radius construction (Theorem 2.8, Figure 6)\n");
  printf("%6s %12s %14s %10s %12s\n", "n", "mu(verts)", "m^3", "ratio",
         "build_ms");
  std::vector<std::pair<double, double>> growth;
  for (int n : {9, 15, 21, 27, 33, 39}) {
    auto pts = workload::LowerBoundCubicEqualRadius(n, /*seed=*/1);
    bench::Timer t;
    core::NonzeroVoronoi vd(pts);
    int m = n / 3;
    double predicted = static_cast<double>(m) * m * m;
    long long mu = vd.stats().arrangement_vertices;
    printf("%6d %12lld %14.0f %10.2f %12.1f\n", n, mu, predicted,
           mu / predicted, t.Ms());
    growth.push_back({static_cast<double>(n), static_cast<double>(mu)});
  }
  printf("measured growth exponent: %.2f (theory: 3.0)\n",
         bench::LogLogSlope(growth));
  return 0;
}
