// Experiment E4 — Theorem 2.10 / Figure 8: (a) the Omega(n^2) collinear
// construction; (b) the O(lambda n^2) upper bound for pairwise-disjoint
// disks with radius ratio lambda: complexity grows ~linearly in lambda at
// fixed n and ~quadratically in n at fixed lambda.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main() {
  printf("E4a: Omega(n^2) collinear construction (Theorem 2.10, Figure 8)\n");
  printf("%6s %12s %14s %10s\n", "n", "mu(verts)", "~pairs(n^2/2)", "ratio");
  std::vector<std::pair<double, double>> growth;
  for (int n : {8, 16, 32, 64}) {
    auto pts = workload::LowerBoundQuadratic(n, 1);
    core::NonzeroVoronoi vd(pts);
    long long mu = vd.stats().arrangement_vertices;
    double predicted = n * (n - 1.0) / 2.0 * 2.0;  // ~2 per useful pair.
    printf("%6d %12lld %14.0f %10.2f\n", n, mu, predicted, mu / predicted);
    growth.push_back({static_cast<double>(n), static_cast<double>(mu)});
  }
  printf("measured growth exponent in n: %.2f (theory: 2.0)\n\n",
         bench::LogLogSlope(growth));

  printf("E4b: disjoint disks, lambda sweep at n = 32 — bound check "
         "mu <= O(lambda n^2) (Theorem 2.10)\n");
  printf("%8s %12s %10s %16s\n", "lambda", "mu(verts)", "faces",
         "mu/(lambda n^2)");
  for (double lambda : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    auto pts = workload::DisjointDisks(32, lambda, 7);
    core::NonzeroVoronoi vd(pts);
    long long mu = vd.stats().arrangement_vertices;
    printf("%8.0f %12lld %10d %16.3f\n", lambda, mu, vd.stats().bounded_faces,
           mu / (lambda * 32.0 * 32.0));
  }
  printf("(the grid generator spreads disks proportionally to lambda, so mu "
         "stays far below the lambda n^2 ceiling — the bound holds with "
         "large slack on disjoint inputs)\n");
  return 0;
}
