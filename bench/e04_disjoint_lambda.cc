// Experiment E4 — Theorem 2.10 / Figure 8: (a) the Omega(n^2) collinear
// construction; (b) the O(lambda n^2) upper bound for pairwise-disjoint
// disks with radius ratio lambda: complexity grows ~linearly in lambda at
// fixed n and ~quadratically in n at fixed lambda.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e04");
  printf("E4a: Omega(n^2) collinear construction (Theorem 2.10, Figure 8)\n");
  printf("%6s %12s %14s %10s\n", "n", "mu(verts)", "~pairs(n^2/2)", "ratio");
  std::vector<std::pair<double, double>> growth;
  auto sizes = bench::Sweep<int>(args.tiny, {8, 16}, {8, 16, 32, 64});
  for (int n : sizes) {
    auto pts = workload::LowerBoundQuadratic(n, 1);
    core::NonzeroVoronoi vd(pts);
    long long mu = vd.stats().arrangement_vertices;
    double predicted = n * (n - 1.0) / 2.0 * 2.0;  // ~2 per useful pair.
    printf("%6d %12lld %14.0f %10.2f\n", n, mu, predicted, mu / predicted);
    json.StartRow();
    json.Metric("n", n);
    json.Metric("mu", static_cast<double>(mu));
    json.Metric("predicted", predicted);
    growth.push_back({static_cast<double>(n), static_cast<double>(mu)});
  }
  printf("measured growth exponent in n: %.2f (theory: 2.0)\n\n",
         bench::LogLogSlope(growth));

  printf("E4b: disjoint disks, lambda sweep at n = 32 — bound check "
         "mu <= O(lambda n^2) (Theorem 2.10)\n");
  printf("%8s %12s %10s %16s\n", "lambda", "mu(verts)", "faces",
         "mu/(lambda n^2)");
  auto lambdas =
      bench::Sweep<double>(args.tiny, {1.0, 2.0}, {1.0, 2.0, 4.0, 8.0, 16.0});
  for (double lambda : lambdas) {
    auto pts = workload::DisjointDisks(32, lambda, 7);
    core::NonzeroVoronoi vd(pts);
    long long mu = vd.stats().arrangement_vertices;
    printf("%8.0f %12lld %10d %16.3f\n", lambda, mu, vd.stats().bounded_faces,
           mu / (lambda * 32.0 * 32.0));
    json.StartRow();
    json.Metric("lambda", lambda);
    json.Metric("mu", static_cast<double>(mu));
    json.Metric("faces", vd.stats().bounded_faces);
  }
  printf("(the grid generator spreads disks proportionally to lambda, so mu "
         "stays far below the lambda n^2 ceiling — the bound holds with "
         "large slack on disjoint inputs)\n");
  return json.Write(args.json_path) ? 0 : 1;
}
