// Experiment E9 — Theorem 4.7: the spiral-search estimator. Error stays
// within eps while retrieving only m(rho,eps) = ceil(rho k ln(1/eps)) + k-1
// of the N sites; the retrieval count scales with the probability spread
// rho, as Remark (i) warns.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>

#include "baselines/brute_force.h"
#include "bench_util.h"
#include "core/spiral_search.h"
#include "workload/generators.h"

using namespace unn;
using core::UncertainPoint;
using geom::Vec2;

/// Discrete workload with controlled probability spread rho.
std::vector<UncertainPoint> SkewedWeights(int n, int k, double rho,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(-10, 10);
  std::uniform_real_distribution<double> off(-2, 2);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    double cx = pos(rng), cy = pos(rng);
    std::vector<Vec2> sites;
    std::vector<double> w;
    double total = 0;
    for (int s = 0; s < k; ++s) {
      sites.push_back({cx + off(rng), cy + off(rng)});
      // Geometric interpolation between 1 and rho across the k sites.
      double ws = std::pow(rho, s / std::max(k - 1.0, 1.0));
      w.push_back(ws);
      total += ws;
    }
    for (auto& x : w) x /= total;
    pts.push_back(UncertainPoint::Discrete(sites, w));
  }
  return pts;
}

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e09");
  printf("E9a: spiral search, eps sweep (n=50, k=4, uniform weights, N=200)\n");
  printf("%8s %8s %12s %12s %14s %14s\n", "eps", "m", "max_err", "err<=eps",
         "query_us", "exact_us");
  auto pts = workload::RandomDiscrete(50, 4, /*seed=*/9, 0.0, 2.0);
  core::SpiralSearch ss(pts);
  auto queries = bench::RandomQueries(args.tiny ? 40 : 200, 18, 31);
  auto epss = bench::Sweep<double>(args.tiny, {0.2, 0.05},
                                   {0.2, 0.1, 0.05, 0.02, 0.01});
  for (double eps : epss) {
    double max_err = 0;
    bench::Timer tq;
    for (auto q : queries) {
      std::vector<double> est(pts.size(), 0.0);
      for (auto [id, p] : ss.Query(q, eps)) est[id] = p;
      auto exact = baselines::QuantificationProbabilities(pts, q);
      for (size_t i = 0; i < pts.size(); ++i) {
        max_err = std::max(max_err, std::abs(exact[i] - est[i]));
      }
    }
    double query_us = tq.Ms() * 1000 / queries.size();
    bench::Timer te;
    for (auto q : queries) baselines::QuantificationProbabilities(pts, q);
    double exact_us = te.Ms() * 1000 / queries.size();
    printf("%8.2f %8d %12.4f %12s %14.1f %14.1f\n", eps,
           ss.SitesRetrieved(eps), max_err, max_err <= eps ? "yes" : "NO",
           query_us, exact_us);
    json.StartRow();
    json.Metric("eps", eps);
    json.Metric("m", ss.SitesRetrieved(eps));
    json.Metric("max_err", max_err);
    json.Metric("query_us", query_us);
    json.Metric("exact_us", exact_us);
  }

  printf("\nE9b: retrieval count vs probability spread rho (eps=0.05)\n");
  printf("%8s %10s %8s %12s\n", "rho", "measured", "m", "max_err");
  auto rhos = bench::Sweep<double>(args.tiny, {1.0, 4.0}, {1.0, 4.0, 16.0});
  for (double rho : rhos) {
    auto skewed = SkewedWeights(50, 4, rho, 11);
    core::SpiralSearch sk(skewed);
    double max_err = 0;
    for (auto q : bench::RandomQueries(args.tiny ? 25 : 100, 12, 37)) {
      std::vector<double> est(skewed.size(), 0.0);
      for (auto [id, p] : sk.Query(q, 0.05)) est[id] = p;
      auto exact = baselines::QuantificationProbabilities(skewed, q);
      for (size_t i = 0; i < skewed.size(); ++i) {
        max_err = std::max(max_err, std::abs(exact[i] - est[i]));
      }
    }
    printf("%8.0f %10.2f %8d %12.4f\n", rho, sk.rho(),
           sk.SitesRetrieved(0.05), max_err);
    json.StartRow();
    json.Metric("rho", rho);
    json.Metric("measured_rho", sk.rho());
    json.Metric("m", sk.SitesRetrieved(0.05));
    json.Metric("max_err", max_err);
  }
  printf("(m grows ~linearly with rho — Remark (i): unbounded spread makes "
         "the approach retrieve Omega(N) sites)\n");
  return json.Write(args.json_path) ? 0 : 1;
}
