// Experiment E5 — Theorem 2.14: complexity of the discrete-case V!=0(P)
// is O(k n^3); random inputs stay far below, roughly linear in k.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi_discrete.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e05");
  printf("E5: discrete V!=0 complexity (Theorem 2.14)\n");
  printf("%6s %4s %12s %12s %10s %12s\n", "n", "k", "segments", "crossings",
         "faces", "build_ms");
  auto sizes = bench::Sweep<int>(args.tiny, {4, 8}, {4, 8, 12, 16});
  auto ks = bench::Sweep<int>(args.tiny, {2, 3}, {2, 3, 4});
  for (int n : sizes) {
    for (int k : ks) {
      auto pts = workload::RandomDiscrete(n, k, /*seed=*/n * 10 + k, 0.0, 1.5);
      bench::Timer t;
      core::NonzeroVoronoiDiscrete vd(pts);
      const auto& st = vd.stats();
      printf("%6d %4d %12lld %12lld %10d %12.1f\n", n, k,
             static_cast<long long>(st.union_segments),
             static_cast<long long>(st.crossings), st.bounded_faces, t.Ms());
      json.StartRow();
      json.Metric("n", n);
      json.Metric("k", k);
      json.Metric("segments", static_cast<double>(st.union_segments));
      json.Metric("crossings", static_cast<double>(st.crossings));
      json.Metric("faces", st.bounded_faces);
      json.Metric("build_ms", t.Ms());
    }
  }
  printf("(ceiling: O(k n^3); observed values sit well below it)\n");
  return json.Write(args.json_path) ? 0 : 1;
}
