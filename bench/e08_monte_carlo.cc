// Experiment E8 — Theorems 4.3/4.5: Monte-Carlo estimation of all pi_i(q).
// Measured max error stays below the configured eps at the theorem's sample
// count s ~ (1/2 eps^2) ln(2 n |Q| / delta); the [CKP04]-style numerical
// integration baseline for the continuous case is orders of magnitude
// slower per query.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/brute_force.h"
#include "bench_util.h"
#include "core/exact_pnn.h"
#include "core/monte_carlo_pnn.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e08");
  printf("E8a: Monte-Carlo vs exact (discrete, n=10 k=3, delta=0.05)\n");
  printf("%8s %8s %12s %12s %14s\n", "eps", "s", "max_err", "err<=eps",
         "query_ms");
  auto pts = workload::RandomDiscrete(10, 3, /*seed=*/8, 8.0, 2.5);
  auto queries = bench::RandomQueries(args.tiny ? 10 : 30, 9, 17);
  auto epss = bench::Sweep<double>(args.tiny, {0.2, 0.1}, {0.2, 0.1, 0.05});
  for (double eps : epss) {
    core::MonteCarloPnnOptions opts;
    opts.eps = eps;
    opts.delta = 0.05;
    core::MonteCarloPnn mc(pts, opts);
    double max_err = 0;
    bench::Timer tq;
    for (auto q : queries) {
      auto exact = baselines::QuantificationProbabilities(pts, q);
      std::vector<double> est(pts.size(), 0.0);
      for (auto [id, p] : mc.Query(q)) est[id] = p;
      for (size_t i = 0; i < pts.size(); ++i) {
        max_err = std::max(max_err, std::abs(est[i] - exact[i]));
      }
    }
    printf("%8.2f %8d %12.4f %12s %14.2f\n", eps, mc.num_instantiations(),
           max_err, max_err <= eps ? "yes" : "NO",
           tq.Ms() / queries.size());
    json.StartRow();
    json.Metric("eps", eps);
    json.Metric("s", mc.num_instantiations());
    json.Metric("max_err", max_err);
    json.Metric("query_ms", tq.Ms() / queries.size());
  }

  printf("\nE8b: continuous case — MC structure vs numerical integration "
         "(n=6 truncated-Gaussian disks)\n");
  // Truncated Gaussians: every cdf evaluation inside Eq. (1) is itself a
  // quadrature, which is what makes the [CKP04] baseline expensive for
  // non-uniform pdfs (sampling is O(1) regardless).
  auto disks = workload::RandomDisks(6, /*seed=*/4, 4.0, 0.5, 1.5);
  for (auto& d : disks) {
    d = core::UncertainPoint::Disk(d.center(), d.radius(),
                                   core::DiskPdf::kTruncatedGaussian);
  }
  core::MonteCarloPnnOptions opts;
  opts.eps = args.tiny ? 0.1 : 0.05;
  opts.delta = 0.05;
  core::MonteCarloPnn mc(disks, opts);
  auto qs = bench::RandomQueries(args.tiny ? 4 : 10, 5, 23);
  bench::Timer tmc;
  for (auto q : qs) mc.Query(q);
  double mc_ms = tmc.Ms() / qs.size();
  bench::Timer tint;
  for (auto q : qs) core::IntegrateAllQuantifications(disks, q, 1e-8);
  double int_ms = tint.Ms() / qs.size();
  printf("MC query (s=%d): %.2f ms;  integration (Eq. 1): %.2f ms;  "
         "ratio %.0fx\n",
         mc.num_instantiations(), mc_ms, int_ms, int_ms / std::max(mc_ms, 1e-9));
  json.StartRow();
  json.Metric("continuous_mc_ms", mc_ms);
  json.Metric("continuous_integration_ms", int_ms);
  return json.Write(args.json_path) ? 0 : 1;
}
