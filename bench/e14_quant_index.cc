// Experiment E14 — the quantification index (core::QuantTree) against the
// O(n) linear scans it replaces behind Engine::MaxDistEnvelope and
// Engine::SurvivalProbability. For each n the driver measures, on the same
// query set, (a) the two-smallest max-distance envelope via the
// definition-level scan and via the index, and (b) the log-space survival
// probability via a linear log accumulation and via the index, verifying
// the answers agree (envelope bit-identical, survival within float
// associativity). The index time should grow ~log n (growth exponent
// near 0) while the scans grow linearly (exponent near 1) — the claim
// behind making exact sharded merges sublinear per shard.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/quant_tree.h"
#include "core/uncertain_point.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e14");
  printf("E14: quantification index vs linear scan "
         "(MaxDistEnvelope / log-survival)\n");
  printf("%9s %9s %12s %12s %8s %10s %12s %12s %8s\n", "n", "build_ms",
         "scan_env_us", "idx_env_us", "env_spd", "idx_pts", "scan_srv_us",
         "idx_srv_us", "srv_spd");

  std::vector<std::pair<double, double>> scan_growth, idx_growth;
  size_t total_mismatches = 0;
  auto sizes = bench::Sweep<int>(args.tiny, {1000, 10000},
                                 {1000, 10000, 100000, 1000000});
  for (int n : sizes) {
    // Bounded-density disks: the spread scales with sqrt(n) inside the
    // generator, the regime where branch-and-bound is near-logarithmic.
    auto pts = workload::RandomDisks(n, /*seed=*/14);
    const int num_queries = n >= 100000 ? 32 : 200;
    // The generator's default extent is 2.5 sqrt(n); span all of it.
    auto queries = bench::RandomQueries(
        num_queries, 2.5 * std::sqrt(static_cast<double>(n)), 141);

    bench::Timer tb;
    core::QuantTree tree(&pts);
    double build_ms = tb.Ms();

    // Envelope: scan vs index, verified identical (values and argmin).
    std::vector<core::DeltaEnvelope> scan_env(queries.size());
    bench::Timer ts;
    for (size_t i = 0; i < queries.size(); ++i) {
      scan_env[i] = core::TwoSmallestMaxDist(pts, queries[i]);
    }
    double scan_env_us = ts.Ms() * 1000.0 / num_queries;

    size_t mismatches = 0;
    long long points_evaluated = 0;
    bench::Timer ti;
    for (size_t i = 0; i < queries.size(); ++i) {
      core::QuantTree::QueryStats stats;
      core::DeltaEnvelope env = tree.MaxDistEnvelope(queries[i], &stats);
      points_evaluated += stats.points_evaluated;
      if (env.best != scan_env[i].best || env.second != scan_env[i].second ||
          env.argbest != scan_env[i].argbest) {
        ++mismatches;
      }
    }
    double idx_env_us = ti.Ms() * 1000.0 / num_queries;
    double idx_pts_avg = static_cast<double>(points_evaluated) / num_queries;

    // Survival at r slightly below the envelope: a handful of supports
    // intersect the ball partially (none is fully contained — that would
    // need Delta_i <= r < min_j Delta_j — so every log stays finite and
    // the exactness gate below compares real values), and the index
    // touches only those supports.
    std::vector<double> radii(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      radii[i] = scan_env[i].best * 0.95;
    }
    std::vector<double> scan_srv(queries.size());
    bench::Timer ss;
    for (size_t i = 0; i < queries.size(); ++i) {
      scan_srv[i] =
          core::QuantTree::LogSurvivalScan(pts, queries[i], radii[i]);
    }
    double scan_srv_us = ss.Ms() * 1000.0 / num_queries;

    bench::Timer si;
    for (size_t i = 0; i < queries.size(); ++i) {
      double got = tree.LogSurvival(queries[i], radii[i]);
      // Infinities compare by identity (|inf - inf| is NaN, which would
      // silently pass a tolerance check); finite values by relative gap.
      bool agree = std::isfinite(got) && std::isfinite(scan_srv[i])
                       ? std::abs(got - scan_srv[i]) <=
                             1e-9 * (1.0 + std::abs(scan_srv[i]))
                       : got == scan_srv[i];
      if (!agree) ++mismatches;
    }
    double idx_srv_us = si.Ms() * 1000.0 / num_queries;

    printf("%9d %9.1f %12.2f %12.2f %8.1f %10.1f %12.2f %12.2f %8.1f%s\n", n,
           build_ms, scan_env_us, idx_env_us, scan_env_us / idx_env_us,
           idx_pts_avg, scan_srv_us, idx_srv_us, scan_srv_us / idx_srv_us,
           mismatches ? "  MISMATCH" : "");
    json.StartRow();
    json.Metric("n", n);
    json.Metric("build_ms", build_ms);
    json.Metric("scan_envelope_us", scan_env_us);
    json.Metric("index_envelope_us", idx_env_us);
    json.Metric("envelope_speedup", scan_env_us / idx_env_us);
    json.Metric("index_points_evaluated_avg", idx_pts_avg);
    json.Metric("scan_survival_us", scan_srv_us);
    json.Metric("index_survival_us", idx_srv_us);
    json.Metric("survival_speedup", scan_srv_us / idx_srv_us);
    json.Metric("mismatches", static_cast<double>(mismatches));
    total_mismatches += mismatches;
    scan_growth.push_back({static_cast<double>(n), scan_env_us});
    idx_growth.push_back({static_cast<double>(n), idx_env_us});
  }

  printf("envelope growth exponent: scan %.2f (theory ~1), index %.2f "
         "(theory ~0, log n)\n",
         bench::LogLogSlope(scan_growth), bench::LogLogSlope(idx_growth));
  json.StartRow();
  json.Metric("scan_growth_exponent", bench::LogLogSlope(scan_growth));
  json.Metric("index_growth_exponent", bench::LogLogSlope(idx_growth));
  // A scan-vs-index disagreement is an exactness regression, not a perf
  // data point: fail the run so CI's bench smoke catches it.
  return (json.Write(args.json_path) && total_mismatches == 0) ? 0 : 1;
}
