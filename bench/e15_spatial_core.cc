// Experiment E15 — the unified spatial core (src/spatial/) against the
// pre-refactor hand-rolled trees it replaced. Each of the five migrated
// structures (range::KdTree, range::DiskTree, core::ExpectedNn,
// core::LinfNonzeroIndex, core::QuantTree) is compared against a
// faithful in-bench replica of its pre-refactor implementation on the
// same data and query set: build time, query time, and — the point —
// exact result parity (ids, distances, and argmin ties bit-identical;
// log-survival within float associativity, the contract it always
// carried). A mismatch fails the run so CI's bench smoke catches any
// drift between the shared core and the structures it now serves.
//
// A sixth part measures the vectorized batch traversal (spatial/batch.h)
// through Engine::QueryMany: scalar (batch_traversal = false) vs batched
// on the same expected-distance workload, with the same exactness
// requirement plus the packs' SIMD lane utilization. CI's bench smoke
// gates on the reported batched_speedup.
//
// A seventh part extends the scalar-vs-batched comparison to the other
// four query types: MostProbableNn / Threshold / TopK on a disk workload
// (the Monte-Carlo backend, whose batched path runs NearestBatch across
// every instantiation) and NonzeroNn on a discrete workload (the
// Theorem 3.2 index's DeltaPairBatch walk). Each row reports
// batched_speedup / lane_utilization / scalar_replays plus the lane ISA
// and NUMA node count as provenance; CI's bench smoke gates these rows
// at >= 1.2x with zero mismatches.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>
#include <random>
#include <vector>

#include "bench_util.h"
#include "core/expected_nn.h"
#include "core/linf_nonzero_index.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_discrete_index.h"
#include "core/quant_tree.h"
#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "geom/lanes.h"
#include "prob/distance_cdf.h"
#include "range/disk_tree.h"
#include "range/kdtree.h"
#include "spatial/batch.h"
#include "util/numa.h"
#include "workload/generators.h"

using namespace unn;
using geom::Box;
using geom::Vec2;

namespace legacy {

// ---------------------------------------------------------------------------
// Pre-refactor replicas, copied from the hand-rolled implementations the
// spatial core replaced (PR 1-4 vintage). Kept verbatim so E15 measures
// and verifies against the real baselines, not a reconstruction.
// ---------------------------------------------------------------------------

constexpr int kLeafSize = 8;
constexpr double kInf = std::numeric_limits<double>::infinity();

class KdTree {
 public:
  explicit KdTree(std::vector<Vec2> pts) : pts_(std::move(pts)) {
    order_.resize(pts_.size());
    std::iota(order_.begin(), order_.end(), 0);
    if (!pts_.empty()) root_ = Build(0, static_cast<int>(pts_.size()), 0);
  }

  int Nearest(Vec2 q, double* dist = nullptr) const {
    if (root_ < 0) return -1;
    int best = -1;
    double best_d = kInf;
    NearestRec(root_, q, &best, &best_d);
    if (dist != nullptr) *dist = best_d;
    return best;
  }

  std::vector<int> KNearest(Vec2 q, int k) const {
    std::vector<int> out;
    Enumerator en(*this, q);
    for (int i = 0; i < k; ++i) {
      int id = en.Next();
      if (id < 0) break;
      out.push_back(id);
    }
    return out;
  }

  void RangeCircle(Vec2 q, double r, std::vector<int>* out,
                   bool inclusive = true) const {
    if (root_ >= 0) RangeRec(root_, q, r, inclusive, out);
  }

  class Enumerator {
   public:
    Enumerator(const KdTree& tree, Vec2 q) : tree_(tree), q_(q) {
      if (tree.root_ >= 0) {
        heap_.push({std::sqrt(tree.nodes_[tree.root_].box.DistSqTo(q)),
                    tree.root_, -1});
      }
    }
    int Next(double* dist = nullptr) {
      while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (e.node < 0) {
          if (dist != nullptr) *dist = e.key;
          return e.point;
        }
        const Node& n = tree_.nodes_[e.node];
        if (n.left < 0) {
          for (int i = n.begin; i < n.end; ++i) {
            int id = tree_.order_[i];
            heap_.push({Dist(q_, tree_.pts_[id]), -1, id});
          }
        } else {
          heap_.push(
              {std::sqrt(tree_.nodes_[n.left].box.DistSqTo(q_)), n.left, -1});
          heap_.push(
              {std::sqrt(tree_.nodes_[n.right].box.DistSqTo(q_)), n.right, -1});
        }
      }
      return -1;
    }

   private:
    struct Entry {
      double key;
      int node;
      int point;
      bool operator<(const Entry& o) const { return key > o.key; }
    };
    const KdTree& tree_;
    Vec2 q_;
    std::priority_queue<Entry> heap_;
  };

 private:
  struct Node {
    Box box;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };

  int Build(int begin, int end, int depth) {
    Node node;
    for (int i = begin; i < end; ++i) node.box.Expand(pts_[order_[i]]);
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    if (end - begin <= kLeafSize) {
      nodes_[id].begin = begin;
      nodes_[id].end = end;
      return id;
    }
    int mid = (begin + end) / 2;
    bool by_x = (depth % 2 == 0);
    if (nodes_[id].box.Width() < 1e-12 * nodes_[id].box.Height()) by_x = false;
    if (nodes_[id].box.Height() < 1e-12 * nodes_[id].box.Width()) by_x = true;
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [&](int a, int b) {
                       return by_x ? pts_[a].x < pts_[b].x
                                   : pts_[a].y < pts_[b].y;
                     });
    int l = Build(begin, mid, depth + 1);
    int r = Build(mid, end, depth + 1);
    nodes_[id].left = l;
    nodes_[id].right = r;
    return id;
  }

  void NearestRec(int node, Vec2 q, int* best, double* best_d) const {
    const Node& n = nodes_[node];
    if (n.box.DistSqTo(q) >= *best_d * *best_d) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        double d = Dist(q, pts_[order_[i]]);
        if (d < *best_d) {
          *best_d = d;
          *best = order_[i];
        }
      }
      return;
    }
    double dl = nodes_[n.left].box.DistSqTo(q);
    double dr = nodes_[n.right].box.DistSqTo(q);
    if (dl <= dr) {
      NearestRec(n.left, q, best, best_d);
      NearestRec(n.right, q, best, best_d);
    } else {
      NearestRec(n.right, q, best, best_d);
      NearestRec(n.left, q, best, best_d);
    }
  }

  void RangeRec(int node, Vec2 q, double r, bool inclusive,
                std::vector<int>* out) const {
    const Node& n = nodes_[node];
    if (n.box.DistSqTo(q) > r * r) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        double d = Dist(q, pts_[order_[i]]);
        if (d < r || (inclusive && d == r)) out->push_back(order_[i]);
      }
      return;
    }
    RangeRec(n.left, q, r, inclusive, out);
    RangeRec(n.right, q, r, inclusive, out);
  }

  std::vector<Vec2> pts_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;

  friend class Enumerator;
};

class DiskTree {
 public:
  DiskTree(std::vector<Vec2> centers, std::vector<double> radii)
      : centers_(std::move(centers)), radii_(std::move(radii)) {
    order_.resize(centers_.size());
    std::iota(order_.begin(), order_.end(), 0);
    if (!centers_.empty()) {
      root_ = Build(0, static_cast<int>(centers_.size()), 0);
    }
  }

  double MinMaxDist(Vec2 q, int* argmin = nullptr) const {
    double best = kInf;
    if (root_ >= 0) MinMaxRec(root_, q, &best, argmin);
    return best;
  }

  void ReportMinDistLess(Vec2 q, double bound, std::vector<int>* out) const {
    if (root_ >= 0) ReportRec(root_, q, bound, out);
  }

 private:
  struct Node {
    Box box;
    double r_min = 0.0, r_max = 0.0;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };

  int Build(int begin, int end, int depth) {
    Node node;
    node.r_min = kInf;
    node.r_max = 0;
    for (int i = begin; i < end; ++i) {
      node.box.Expand(centers_[order_[i]]);
      node.r_min = std::min(node.r_min, radii_[order_[i]]);
      node.r_max = std::max(node.r_max, radii_[order_[i]]);
    }
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    if (end - begin <= kLeafSize) {
      nodes_[id].begin = begin;
      nodes_[id].end = end;
      return id;
    }
    int mid = (begin + end) / 2;
    bool by_x = (depth % 2 == 0);
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [&](int a, int b) {
                       return by_x ? centers_[a].x < centers_[b].x
                                   : centers_[a].y < centers_[b].y;
                     });
    int l = Build(begin, mid, depth + 1);
    int r = Build(mid, end, depth + 1);
    nodes_[id].left = l;
    nodes_[id].right = r;
    return id;
  }

  void MinMaxRec(int node, Vec2 q, double* best, int* argmin) const {
    const Node& n = nodes_[node];
    double lb = std::sqrt(n.box.DistSqTo(q)) + n.r_min;
    if (lb >= *best) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = order_[i];
        double v = Dist(q, centers_[id]) + radii_[id];
        if (v < *best) {
          *best = v;
          if (argmin != nullptr) *argmin = id;
        }
      }
      return;
    }
    double ll =
        std::sqrt(nodes_[n.left].box.DistSqTo(q)) + nodes_[n.left].r_min;
    double lr =
        std::sqrt(nodes_[n.right].box.DistSqTo(q)) + nodes_[n.right].r_min;
    if (ll <= lr) {
      MinMaxRec(n.left, q, best, argmin);
      MinMaxRec(n.right, q, best, argmin);
    } else {
      MinMaxRec(n.right, q, best, argmin);
      MinMaxRec(n.left, q, best, argmin);
    }
  }

  void ReportRec(int node, Vec2 q, double bound, std::vector<int>* out) const {
    const Node& n = nodes_[node];
    if (std::sqrt(n.box.DistSqTo(q)) - n.r_max >= bound) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = order_[i];
        if (std::max(Dist(q, centers_[id]) - radii_[id], 0.0) < bound) {
          out->push_back(id);
        }
      }
      return;
    }
    ReportRec(n.left, q, bound, out);
    ReportRec(n.right, q, bound, out);
  }

  std::vector<Vec2> centers_;
  std::vector<double> radii_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// The pre-refactor ExpectedNn moment computation (mean + variance per
/// uncertain point), so the legacy build timing covers the same work as
/// core::ExpectedNn's constructor.
void ComputeMoments(const std::vector<core::UncertainPoint>& pts,
                    std::vector<Vec2>* mean, std::vector<double>* var) {
  for (const auto& p : pts) {
    if (p.is_disk()) {
      mean->push_back(p.center());
      double radius = p.radius();
      if (p.pdf() == core::DiskPdf::kUniform) {
        var->push_back(radius * radius / 2.0);
      } else {
        double s2 = radius * radius / 2.0;
        double a = radius * radius / s2;
        var->push_back(s2 * (1.0 - std::exp(-a) * (1.0 + a)) /
                       (1.0 - std::exp(-a)));
      }
    } else {
      Vec2 mu{0, 0};
      for (size_t s = 0; s < p.sites().size(); ++s) {
        mu = mu + p.sites()[s] * p.weights()[s];
      }
      double v = 0;
      for (size_t s = 0; s < p.sites().size(); ++s) {
        v += p.weights()[s] * DistSq(p.sites()[s], mu);
      }
      mean->push_back(mu);
      var->push_back(v);
    }
  }
}

/// The pre-refactor ExpectedNn kd core: box of means + min variance,
/// argmin of d(q, mu)^2 + var by ordered pruned descent.
class PowerTree {
 public:
  PowerTree(std::vector<Vec2> mean, std::vector<double> var)
      : mean_(std::move(mean)), var_(std::move(var)) {
    order_.resize(mean_.size());
    std::iota(order_.begin(), order_.end(), 0);
    root_ = Build(0, static_cast<int>(mean_.size()), 0);
  }

  int QuerySquared(Vec2 q) const {
    double best = kInf;
    int arg = -1;
    QueryRec(root_, q, &best, &arg);
    return arg;
  }

  Vec2 mean(int i) const { return mean_[i]; }
  double variance(int i) const { return var_[i]; }

 private:
  struct Node {
    Box box;
    double var_min = 0.0;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };

  int Build(int begin, int end, int depth) {
    Node node;
    node.var_min = kInf;
    for (int i = begin; i < end; ++i) {
      node.box.Expand(mean_[order_[i]]);
      node.var_min = std::min(node.var_min, var_[order_[i]]);
    }
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    if (end - begin <= kLeafSize) {
      nodes_[id].begin = begin;
      nodes_[id].end = end;
      return id;
    }
    int mid = (begin + end) / 2;
    bool by_x = (depth % 2 == 0);
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [&](int a, int b) {
                       return by_x ? mean_[a].x < mean_[b].x
                                   : mean_[a].y < mean_[b].y;
                     });
    int l = Build(begin, mid, depth + 1);
    int r = Build(mid, end, depth + 1);
    nodes_[id].left = l;
    nodes_[id].right = r;
    return id;
  }

  void QueryRec(int node, Vec2 q, double* best, int* arg) const {
    const Node& n = nodes_[node];
    if (n.box.DistSqTo(q) + n.var_min >= *best) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = order_[i];
        double v = DistSq(q, mean_[id]) + var_[id];
        if (v < *best) {
          *best = v;
          *arg = id;
        }
      }
      return;
    }
    double dl = nodes_[n.left].box.DistSqTo(q) + nodes_[n.left].var_min;
    double dr = nodes_[n.right].box.DistSqTo(q) + nodes_[n.right].var_min;
    if (dl <= dr) {
      QueryRec(n.left, q, best, arg);
      QueryRec(n.right, q, best, arg);
    } else {
      QueryRec(n.right, q, best, arg);
      QueryRec(n.left, q, best, arg);
    }
  }

  std::vector<Vec2> mean_;
  std::vector<double> var_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

class LinfIndex {
 public:
  explicit LinfIndex(std::vector<core::SquareRegion> squares)
      : squares_(std::move(squares)) {
    order_.resize(squares_.size());
    std::iota(order_.begin(), order_.end(), 0);
    root_ = Build(0, static_cast<int>(squares_.size()), 0);
  }

  double Delta(Vec2 q) const {
    Envelope env{kInf, kInf, -1};
    DeltaRec(root_, q, &env);
    return env.best;
  }

  std::vector<int> Query(Vec2 q) const {
    if (squares_.size() == 1) return {0};
    Envelope env{kInf, kInf, -1};
    DeltaRec(root_, q, &env);
    std::vector<int> out;
    ReportRec(root_, q, env.best, &out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
    bool arg_should = MinDist(env.argbest, q) < env.second;
    if (arg_in && !arg_should) {
      out.erase(std::find(out.begin(), out.end(), env.argbest));
    } else if (!arg_in && arg_should) {
      out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
                 env.argbest);
    }
    return out;
  }

 private:
  struct Node {
    Box box;
    double r_min = 0.0, r_max = 0.0;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };
  struct Envelope {
    double best, second;
    int argbest;
  };

  static double ChebToBox(Vec2 q, const Box& b) {
    double dx = std::max({b.lo.x - q.x, 0.0, q.x - b.hi.x});
    double dy = std::max({b.lo.y - q.y, 0.0, q.y - b.hi.y});
    return std::max(dx, dy);
  }

  double MinDist(int i, Vec2 q) const {
    return std::max(
        geom::ChebyshevDist(q, squares_[i].center) - squares_[i].half_side,
        0.0);
  }

  int Build(int begin, int end, int depth) {
    Node node;
    node.r_min = kInf;
    for (int i = begin; i < end; ++i) {
      node.box.Expand(squares_[order_[i]].center);
      node.r_min = std::min(node.r_min, squares_[order_[i]].half_side);
      node.r_max = std::max(node.r_max, squares_[order_[i]].half_side);
    }
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(node);
    if (end - begin <= kLeafSize) {
      nodes_[id].begin = begin;
      nodes_[id].end = end;
      return id;
    }
    int mid = (begin + end) / 2;
    bool by_x = (depth % 2 == 0);
    std::nth_element(
        order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
        [&](int a, int b) {
          return by_x ? squares_[a].center.x < squares_[b].center.x
                      : squares_[a].center.y < squares_[b].center.y;
        });
    nodes_[id].left = Build(begin, mid, depth + 1);
    nodes_[id].right = Build(mid, end, depth + 1);
    return id;
  }

  void DeltaRec(int node, Vec2 q, Envelope* env) const {
    const Node& n = nodes_[node];
    if (ChebToBox(q, n.box) + n.r_min >= env->second) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = order_[i];
        double v = geom::ChebyshevDist(q, squares_[id].center) +
                   squares_[id].half_side;
        if (v < env->best) {
          env->second = env->best;
          env->best = v;
          env->argbest = id;
        } else {
          env->second = std::min(env->second, v);
        }
      }
      return;
    }
    DeltaRec(n.left, q, env);
    DeltaRec(n.right, q, env);
  }

  void ReportRec(int node, Vec2 q, double bound, std::vector<int>* out) const {
    const Node& n = nodes_[node];
    if (ChebToBox(q, n.box) - n.r_max >= bound) return;
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = order_[i];
        double d = std::max(geom::ChebyshevDist(q, squares_[id].center) -
                                squares_[id].half_side,
                            0.0);
        if (d < bound) out->push_back(id);
      }
      return;
    }
    ReportRec(n.left, q, bound, out);
    ReportRec(n.right, q, bound, out);
  }

  std::vector<core::SquareRegion> squares_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

class QuantTree {
 public:
  explicit QuantTree(const std::vector<core::UncertainPoint>* points)
      : points_(points) {
    int n = static_cast<int>(points_->size());
    anchors_.reserve(n);
    radii_.reserve(n);
    for (const core::UncertainPoint& p : *points_) {
      if (p.is_disk()) {
        anchors_.push_back(p.center());
        radii_.push_back(p.radius());
      } else {
        Vec2 c{0, 0};
        for (Vec2 s : p.sites()) c = c + s;
        c = c / static_cast<double>(p.sites().size());
        double r = 0.0;
        for (Vec2 s : p.sites()) r = std::max(r, Dist(c, s));
        anchors_.push_back(c);
        radii_.push_back(r);
      }
    }
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    if (n > 0) {
      nodes_.reserve(2 * (n / kLeafSize + 1));
      root_ = Build(0, n);
    }
  }

  core::DeltaEnvelope MaxDistEnvelope(Vec2 q) const {
    core::DeltaEnvelope env;
    env.best = kInf;
    env.second = kInf;
    if (root_ < 0) return env;
    std::priority_queue<HeapEntry> heap;
    heap.push({MaxDistLowerBound(nodes_[root_], q), root_});
    while (!heap.empty()) {
      HeapEntry e = heap.top();
      heap.pop();
      if (EnvelopePrunable(e.lb, env)) break;
      const Node& node = nodes_[e.node];
      if (node.left < 0) {
        for (int j = node.begin; j < node.end; ++j) {
          int id = order_[j];
          env.Insert((*points_)[id].MaxDist(q), id);
        }
      } else {
        for (int child : {node.left, node.right}) {
          double lb = MaxDistLowerBound(nodes_[child], q);
          if (!EnvelopePrunable(lb, env)) heap.push({lb, child});
        }
      }
    }
    return env;
  }

  double LogSurvival(Vec2 q, double r) const {
    if (root_ < 0) return 0.0;
    return LogSurvivalRec(root_, q, r);
  }

  int ArgminPointwise(Vec2 q, const std::function<double(int)>& value) const {
    int best_id = -1;
    double best_v = kInf;
    if (root_ < 0) return best_id;
    std::priority_queue<HeapEntry> heap;
    heap.push({MinDistLowerBound(nodes_[root_], q), root_});
    while (!heap.empty()) {
      HeapEntry e = heap.top();
      heap.pop();
      if (e.lb > best_v) break;
      const Node& node = nodes_[e.node];
      if (node.left < 0) {
        for (int j = node.begin; j < node.end; ++j) {
          int id = order_[j];
          double v = value(id);
          if (v < best_v || (v == best_v && id < best_id)) {
            best_v = v;
            best_id = id;
          }
        }
      } else {
        for (int child : {node.left, node.right}) {
          double lb = MinDistLowerBound(nodes_[child], q);
          if (lb <= best_v) heap.push({lb, child});
        }
      }
    }
    return best_id;
  }

 private:
  struct Node {
    Box box;
    double r_min = 0.0, r_max = 0.0;
    bool all_disk = true;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };
  struct HeapEntry {
    double lb = 0.0;
    int node = -1;
    bool operator<(const HeapEntry& o) const { return lb > o.lb; }
  };

  static bool EnvelopePrunable(double lb, const core::DeltaEnvelope& env) {
    if (lb > env.second) return true;
    return lb >= env.second && env.second > env.best;
  }

  int Build(int begin, int end) {
    Node node;
    node.begin = begin;
    node.end = end;
    node.r_min = kInf;
    for (int j = begin; j < end; ++j) {
      int id = order_[j];
      node.box.Expand(anchors_[id]);
      node.r_min = std::min(node.r_min, radii_[id]);
      node.r_max = std::max(node.r_max, radii_[id]);
      node.all_disk = node.all_disk && (*points_)[id].is_disk();
    }
    if (end - begin > kLeafSize) {
      bool split_x = node.box.Width() >= node.box.Height();
      int mid = begin + (end - begin) / 2;
      std::nth_element(order_.begin() + begin, order_.begin() + mid,
                       order_.begin() + end, [&](int a, int b) {
                         return split_x ? anchors_[a].x < anchors_[b].x
                                        : anchors_[a].y < anchors_[b].y;
                       });
      node.left = Build(begin, mid);
      node.right = Build(mid, end);
    }
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
  }

  double MaxDistLowerBound(const Node& node, Vec2 q) const {
    double lb = std::sqrt(node.box.DistSqTo(q));
    if (node.all_disk) lb += node.r_min;
    return std::max(lb, node.r_min - node.box.MaxDistTo(q));
  }

  double MinDistLowerBound(const Node& node, Vec2 q) const {
    return std::max(std::sqrt(node.box.DistSqTo(q)) - node.r_max, 0.0);
  }

  double LogSurvivalRec(int node_id, Vec2 q, double r) const {
    const Node& node = nodes_[node_id];
    if (MinDistLowerBound(node, q) > r) return 0.0;
    if (node.left < 0) {
      double acc = 0.0;
      for (int j = node.begin; j < node.end; ++j) {
        int id = order_[j];
        const core::UncertainPoint& p = (*points_)[id];
        if (p.MinDist(q) > r) continue;
        double cdf = prob::DistanceCdf(p, q, r);
        if (cdf >= 1.0) return -kInf;
        acc += std::log1p(-cdf);
      }
      return acc;
    }
    double left = LogSurvivalRec(node.left, q, r);
    if (std::isinf(left)) return left;
    return left + LogSurvivalRec(node.right, q, r);
  }

  const std::vector<core::UncertainPoint>* points_;
  std::vector<Vec2> anchors_;
  std::vector<double> radii_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace legacy

namespace {

struct Row {
  const char* structure;
  double legacy_build_ms = 0, new_build_ms = 0;
  double legacy_query_us = 0, new_query_us = 0;
  size_t mismatches = 0;
};

void Print(const Row& r, int n, bench::JsonEmitter* json) {
  printf("%-12s %9d %12.2f %12.2f %8.2f %12.3f %12.3f %8.2f%s\n", r.structure,
         n, r.legacy_build_ms, r.new_build_ms,
         r.legacy_build_ms / std::max(r.new_build_ms, 1e-9), r.legacy_query_us,
         r.new_query_us, r.legacy_query_us / std::max(r.new_query_us, 1e-9),
         r.mismatches ? "  MISMATCH" : "");
  json->StartRow();
  json->Metric("n", n);
  json->Str("structure", r.structure);
  json->Metric("legacy_build_ms", r.legacy_build_ms);
  json->Metric("new_build_ms", r.new_build_ms);
  json->Metric("legacy_query_us", r.legacy_query_us);
  json->Metric("new_query_us", r.new_query_us);
  json->Metric("query_speedup_vs_legacy",
               r.legacy_query_us / std::max(r.new_query_us, 1e-9));
  json->Metric("mismatches", static_cast<double>(r.mismatches));
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e15");
  printf("E15: unified spatial core vs pre-refactor hand-rolled trees\n");
  printf("%-12s %9s %12s %12s %8s %12s %12s %8s\n", "structure", "n",
         "old_bld_ms", "new_bld_ms", "bld_spd", "old_qry_us", "new_qry_us",
         "qry_spd");

  size_t total_mismatches = 0;
  auto sizes = bench::Sweep<int>(args.tiny, {2000}, {20000, 200000});
  for (int n : sizes) {
    const int num_queries = n >= 100000 ? 64 : 400;
    double extent = 2.5 * std::sqrt(static_cast<double>(n));
    auto pts = bench::RandomQueries(n, extent, 151);
    auto queries = bench::RandomQueries(num_queries, extent, 152);

    // --- range::KdTree: Nearest + KNearest + RangeCircle ------------------
    {
      Row row{"kdtree"};
      bench::Timer tl;
      legacy::KdTree old_tree(pts);
      row.legacy_build_ms = tl.Ms();
      bench::Timer tn;
      range::KdTree new_tree(pts);
      row.new_build_ms = tn.Ms();

      double range_r = extent / 20.0;
      std::vector<int> old_near(queries.size());
      std::vector<double> old_dist(queries.size());
      size_t sink = 0;  // Keeps the timed result vectors observable.
      bench::Timer ql;
      for (size_t i = 0; i < queries.size(); ++i) {
        old_near[i] = old_tree.Nearest(queries[i], &old_dist[i]);
        sink += old_tree.KNearest(queries[i], 16).size();
        std::vector<int> in_range;
        old_tree.RangeCircle(queries[i], range_r, &in_range);
        sink += in_range.size();
      }
      row.legacy_query_us = ql.Ms() * 1000.0 / num_queries;

      bench::Timer qn;
      for (size_t i = 0; i < queries.size(); ++i) {
        double d;
        int got = new_tree.Nearest(queries[i], &d);
        if (got != old_near[i] || d != old_dist[i]) ++row.mismatches;
        std::vector<int> knn_new = new_tree.KNearest(queries[i], 16);
        std::vector<int> knn_old = old_tree.KNearest(queries[i], 16);
        if (knn_new != knn_old) ++row.mismatches;
        std::vector<int> range_new, range_old;
        new_tree.RangeCircle(queries[i], range_r, &range_new);
        old_tree.RangeCircle(queries[i], range_r, &range_old);
        if (range_new != range_old) ++row.mismatches;
      }
      // Timed pass over the new tree alone (parity pass above re-runs the
      // legacy tree, so it cannot be the timed one).
      bench::Timer qn2;
      for (size_t i = 0; i < queries.size(); ++i) {
        double d;
        new_tree.Nearest(queries[i], &d);
        sink += new_tree.KNearest(queries[i], 16).size();
        std::vector<int> in_range;
        new_tree.RangeCircle(queries[i], range_r, &in_range);
        sink += in_range.size();
      }
      row.new_query_us = qn2.Ms() * 1000.0 / num_queries;
      if (sink == 0) printf("(empty result sets)\n");
      total_mismatches += row.mismatches;
      Print(row, n, &json);
    }

    // --- range::DiskTree: MinMaxDist + ReportMinDistLess ------------------
    {
      Row row{"disk_tree"};
      std::mt19937_64 rng(153);
      std::uniform_real_distribution<double> ru(0.05, 3.0);
      std::vector<double> radii(n);
      for (auto& r : radii) r = ru(rng);

      bench::Timer tl;
      legacy::DiskTree old_tree(pts, radii);
      row.legacy_build_ms = tl.Ms();
      bench::Timer tn;
      range::DiskTree new_tree(pts, radii);
      row.new_build_ms = tn.Ms();

      bench::Timer ql;
      std::vector<double> old_val(queries.size());
      std::vector<int> old_arg(queries.size(), -1);
      for (size_t i = 0; i < queries.size(); ++i) {
        old_val[i] = old_tree.MinMaxDist(queries[i], &old_arg[i]);
      }
      row.legacy_query_us = ql.Ms() * 1000.0 / num_queries;

      for (size_t i = 0; i < queries.size(); ++i) {
        int arg = -1;
        double got = new_tree.MinMaxDist(queries[i], &arg);
        if (got != old_val[i] || arg != old_arg[i]) ++row.mismatches;
        std::vector<int> rep_new, rep_old;
        new_tree.ReportMinDistLess(queries[i], old_val[i] * 1.1, &rep_new);
        old_tree.ReportMinDistLess(queries[i], old_val[i] * 1.1, &rep_old);
        if (rep_new != rep_old) ++row.mismatches;
      }
      bench::Timer qn;
      for (size_t i = 0; i < queries.size(); ++i) {
        int arg = -1;
        new_tree.MinMaxDist(queries[i], &arg);
      }
      row.new_query_us = qn.Ms() * 1000.0 / num_queries;
      total_mismatches += row.mismatches;
      Print(row, n, &json);
    }

    // --- core::ExpectedNn: QuerySquared over the same mean/var ------------
    {
      Row row{"expected_nn"};
      auto upts = workload::RandomDisks(n, 154);
      bench::Timer tn;
      core::ExpectedNn new_nn(upts);
      row.new_build_ms = tn.Ms();
      bench::Timer tl;
      std::vector<Vec2> mean;
      std::vector<double> var;
      legacy::ComputeMoments(upts, &mean, &var);
      legacy::PowerTree old_tree(std::move(mean), std::move(var));
      row.legacy_build_ms = tl.Ms();
      for (int i = 0; i < n; ++i) {
        if (new_nn.mean(i) != old_tree.mean(i) ||
            new_nn.variance(i) != old_tree.variance(i)) {
          ++row.mismatches;
        }
      }

      bench::Timer ql;
      std::vector<int> old_arg(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        old_arg[i] = old_tree.QuerySquared(queries[i]);
      }
      row.legacy_query_us = ql.Ms() * 1000.0 / num_queries;
      for (size_t i = 0; i < queries.size(); ++i) {
        if (new_nn.QuerySquared(queries[i]) != old_arg[i]) ++row.mismatches;
      }
      bench::Timer qn;
      for (size_t i = 0; i < queries.size(); ++i) {
        new_nn.QuerySquared(queries[i]);
      }
      row.new_query_us = qn.Ms() * 1000.0 / num_queries;
      total_mismatches += row.mismatches;
      Print(row, n, &json);
    }

    // --- core::LinfNonzeroIndex: Query + Delta ----------------------------
    {
      Row row{"linf_index"};
      std::mt19937_64 rng(155);
      std::uniform_real_distribution<double> hu(0.05, 2.0);
      std::vector<core::SquareRegion> squares(n);
      for (int i = 0; i < n; ++i) squares[i] = {pts[i], hu(rng)};

      bench::Timer tl;
      legacy::LinfIndex old_ix(squares);
      row.legacy_build_ms = tl.Ms();
      bench::Timer tn;
      core::LinfNonzeroIndex new_ix(squares);
      row.new_build_ms = tn.Ms();

      bench::Timer ql;
      std::vector<std::vector<int>> old_out(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        old_out[i] = old_ix.Query(queries[i]);
      }
      row.legacy_query_us = ql.Ms() * 1000.0 / num_queries;
      for (size_t i = 0; i < queries.size(); ++i) {
        if (new_ix.Query(queries[i]) != old_out[i]) ++row.mismatches;
        if (new_ix.Delta(queries[i]) != old_ix.Delta(queries[i])) {
          ++row.mismatches;
        }
      }
      bench::Timer qn;
      for (size_t i = 0; i < queries.size(); ++i) {
        new_ix.Query(queries[i]);
      }
      row.new_query_us = qn.Ms() * 1000.0 / num_queries;
      total_mismatches += row.mismatches;
      Print(row, n, &json);
    }

    // --- core::QuantTree: envelope + argmin exact, survival ~1e-12 --------
    {
      Row row{"quant_tree"};
      auto upts = workload::RandomDisks(n, 156);
      bench::Timer tl;
      legacy::QuantTree old_tree(&upts);
      row.legacy_build_ms = tl.Ms();
      bench::Timer tn;
      core::QuantTree new_tree(&upts);
      row.new_build_ms = tn.Ms();

      bench::Timer ql;
      std::vector<core::DeltaEnvelope> old_env(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        old_env[i] = old_tree.MaxDistEnvelope(queries[i]);
      }
      row.legacy_query_us = ql.Ms() * 1000.0 / num_queries;
      for (size_t i = 0; i < queries.size(); ++i) {
        core::DeltaEnvelope env = new_tree.MaxDistEnvelope(queries[i]);
        if (env.best != old_env[i].best || env.second != old_env[i].second ||
            env.argbest != old_env[i].argbest) {
          ++row.mismatches;
        }
        auto value = [&](int id) { return upts[id].MaxDist(queries[i]); };
        if (new_tree.ArgminPointwise(queries[i], value) !=
            old_tree.ArgminPointwise(queries[i], value)) {
          ++row.mismatches;
        }
        double r = old_env[i].best * 0.95;
        double old_log = old_tree.LogSurvival(queries[i], r);
        double new_log = new_tree.LogSurvival(queries[i], r);
        bool agree = std::isfinite(old_log) && std::isfinite(new_log)
                         ? std::abs(old_log - new_log) <=
                               1e-12 * (1.0 + std::abs(old_log))
                         : old_log == new_log;
        if (!agree) ++row.mismatches;
      }
      bench::Timer qn;
      for (size_t i = 0; i < queries.size(); ++i) {
        new_tree.MaxDistEnvelope(queries[i]);
      }
      row.new_query_us = qn.Ms() * 1000.0 / num_queries;
      total_mismatches += row.mismatches;
      Print(row, n, &json);
    }

    // --- Engine::QueryMany: scalar vs vectorized batch traversal ----------
    {
      Row row{"batched_qm"};
      auto upts = workload::RandomDiscrete(n, 6, 157);
      // The scalar side is a full per-query scan, so cap the batch at
      // large n to keep the full sweep's wall clock sane.
      const int batch_queries = (args.tiny || n >= 100000) ? 512 : 2048;
      auto bqs = bench::RandomQueries(batch_queries, extent, 158);
      const Engine::QuerySpec spec{Engine::QueryType::kExpectedDistanceNn,
                                   0.5, 1};

      Engine::Config scalar_cfg;
      scalar_cfg.batch_traversal = false;
      bench::Timer tl;
      Engine scalar(upts, scalar_cfg);
      scalar.Warmup(spec);
      row.legacy_build_ms = tl.Ms();
      bench::Timer tn;
      Engine batched(upts);
      batched.Warmup(spec);
      row.new_build_ms = tn.Ms();

      // Exactness first: batching must never change an answer.
      auto scalar_res = scalar.QueryMany(bqs, spec);
      auto batched_res = batched.QueryMany(bqs, spec);
      for (size_t i = 0; i < bqs.size(); ++i) {
        if (batched_res[i].nn != scalar_res[i].nn) ++row.mismatches;
      }

      bench::Timer ql;
      scalar.QueryMany(bqs, spec);
      row.legacy_query_us = ql.Ms() * 1000.0 / batch_queries;
      bench::Timer qn;
      batched.QueryMany(bqs, spec);
      row.new_query_us = qn.Ms() * 1000.0 / batch_queries;

      // Lane utilization of the underlying kernel on the same workload.
      core::ExpectedNn nn(upts);
      std::vector<int> ids(bqs.size());
      spatial::BatchStats stats;
      nn.QueryExpectedBatch(bqs, scalar_cfg.tol, ids, &stats);

      total_mismatches += row.mismatches;
      Print(row, n, &json);
      json.Metric("batched_speedup",
                  row.legacy_query_us / std::max(row.new_query_us, 1e-9));
      json.Metric("lane_utilization", stats.LaneUtilization());
      json.Metric("scalar_replays", static_cast<double>(stats.scalar_replays));
      printf("%-12s %9d  batched_speedup %.2fx  lane_utilization %.2f\n",
             "  (batch)", n,
             row.legacy_query_us / std::max(row.new_query_us, 1e-9),
             stats.LaneUtilization());
    }

    // --- Remaining four query types: scalar vs batched QueryMany ----------
    {
      // Serving-representative bursts: pack coherence — and so the
      // whole point of batching — scales with query density, and 256
      // queries over the workload extent leave packs spatially sparse
      // enough to undersell every kernel. 1024 is the smallest burst
      // where the Monte-Carlo-backed kernels' utilization stabilizes.
      // The NN!=0 engine answers a query ~50x cheaper than those, so a
      // burst collected over the same serving window holds
      // proportionally more of them — its part uses the same scale-up
      // (and its shared group-tree walk only reaches its serving
      // utilization at that density).
      // Disks resolve the probability backend to Monte Carlo; the sample
      // override keeps the sweep's wall clock proportional to the
      // traversal being measured, not the theorem's constants.
      auto disk_pts = workload::RandomDisks(n, 160);
      auto disc_pts = workload::RandomDiscrete(n, 4, 161);
      Engine::Config batched_cfg;
      batched_cfg.mc_samples_override = 96;
      Engine::Config scalar_cfg = batched_cfg;
      scalar_cfg.batch_traversal = false;
      Engine scalar_disk(disk_pts, scalar_cfg);
      Engine batched_disk(disk_pts, batched_cfg);
      Engine scalar_disc(disc_pts, scalar_cfg);
      Engine batched_disc(disc_pts, batched_cfg);

      struct Part {
        const char* structure;
        Engine::QuerySpec spec;
        bool disks;
        int burst;
      };
      const Part parts[] = {
          {"batched_mpnn",
           {Engine::QueryType::kMostProbableNn, 0.5, 1},
           true, 1024},
          {"batched_threshold",
           {Engine::QueryType::kThreshold, 0.25, 1},
           true, 1024},
          {"batched_topk", {Engine::QueryType::kTopK, 0.5, 8}, true, 1024},
          {"batched_nonzero",
           {Engine::QueryType::kNonzeroNn, 0.5, 1},
           false, 8192},
      };
      for (const Part& part : parts) {
        Row row{part.structure};
        auto bqs = bench::RandomQueries(part.burst, extent, 159);
        const Engine& scalar = part.disks ? scalar_disk : scalar_disc;
        const Engine& batched = part.disks ? batched_disk : batched_disc;
        scalar.Warmup(part.spec);
        batched.Warmup(part.spec);

        // Exactness first: batching must never change an answer.
        auto want = scalar.QueryMany(bqs, part.spec);
        auto got = batched.QueryMany(bqs, part.spec);
        for (size_t i = 0; i < bqs.size(); ++i) {
          if (got[i].nn != want[i].nn || got[i].ranked != want[i].ranked ||
              got[i].ids != want[i].ids) {
            ++row.mismatches;
          }
        }

        // Best-of-3 interleaved passes: each section is only a few
        // milliseconds at the small sizes, where a single shot is at the
        // mercy of frequency and scheduler jitter; the per-side minimum
        // is the stable estimator the smoke gate compares.
        double scalar_ms = std::numeric_limits<double>::infinity();
        double batched_ms = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 3; ++rep) {
          bench::Timer ql;
          scalar.QueryMany(bqs, part.spec);
          scalar_ms = std::min(scalar_ms, ql.Ms());
          bench::Timer qn;
          batched.QueryMany(bqs, part.spec);
          batched_ms = std::min(batched_ms, qn.Ms());
        }
        row.legacy_query_us = scalar_ms * 1000.0 / part.burst;
        row.new_query_us = batched_ms * 1000.0 / part.burst;

        // Lane utilization / replay counts of the dominant kernel on the
        // same workload (QueryMany itself does not expose pack stats).
        spatial::BatchStats stats;
        if (part.disks) {
          core::MonteCarloPnnOptions mc_opts;
          mc_opts.s_override = batched_cfg.mc_samples_override;
          core::MonteCarloPnn mc(disk_pts, mc_opts);
          mc.QueryBatch(bqs, &stats);
        } else {
          core::NnNonzeroDiscreteIndex ix(disc_pts);
          ix.QueryBatch(bqs, &stats);
        }

        total_mismatches += row.mismatches;
        Print(row, n, &json);
        json.Metric("batched_speedup",
                    row.legacy_query_us / std::max(row.new_query_us, 1e-9));
        json.Metric("lane_utilization", stats.LaneUtilization());
        json.Metric("scalar_replays",
                    static_cast<double>(stats.scalar_replays));
        json.Str("lane_isa", geom::LaneIsaName());
        json.Metric("numa_nodes",
                    static_cast<double>(util::DetectNumaTopology().num_nodes()));
        printf("%-12s %9d  batched_speedup %.2fx  lane_utilization %.2f\n",
               "  (batch)", n,
               row.legacy_query_us / std::max(row.new_query_us, 1e-9),
               stats.LaneUtilization());
      }
    }
  }

  printf("total mismatches vs pre-refactor baselines: %zu %s\n",
         total_mismatches, total_mismatches == 0 ? "(bit-identical)" : "");
  // Any disagreement with the pre-refactor baselines is a correctness
  // regression in the spatial core: fail the run so CI catches it.
  return (json.Write(args.json_path) && total_mismatches == 0) ? 0 : 1;
}
