// Experiment E1 — Theorem 2.5 upper bound and Conclusion (i) on random
// inputs: the complexity of V!=0(P) on random disks grows far below the
// worst-case n^3 (near-linearly at low density), while never exceeding the
// O(n^3) ceiling.

#include <cstdio>

#include "bench_util.h"
#include "core/nonzero_voronoi.h"
#include "workload/generators.h"

using namespace unn;

int main(int argc, char** argv) {
  auto args = bench::ParseArgs(argc, argv);
  bench::JsonEmitter json("e01");
  printf("E1: V!=0 complexity on random disks (Theorem 2.5 / Conclusion i)\n");
  printf("%6s %6s %12s %12s %12s %10s %12s\n", "n", "seed", "breakpoints",
         "crossings", "mu(verts)", "faces", "build_ms");
  std::vector<std::pair<double, double>> growth;
  auto sizes = bench::Sweep<int>(args.tiny, {8, 16}, {8, 16, 32, 64, 96});
  auto seeds = bench::Sweep<uint64_t>(args.tiny, {1}, {1, 2, 3});
  for (int n : sizes) {
    double mu_avg = 0;
    for (uint64_t seed : seeds) {
      auto pts = workload::RandomDisks(n, seed);
      bench::Timer t;
      core::NonzeroVoronoi vd(pts);
      const auto& st = vd.stats();
      printf("%6d %6llu %12lld %12lld %12lld %10d %12.1f\n", n,
             static_cast<unsigned long long>(seed),
             static_cast<long long>(st.gamma_breakpoints),
             static_cast<long long>(st.curve_crossings),
             static_cast<long long>(st.arrangement_vertices), st.bounded_faces,
             t.Ms());
      json.StartRow();
      json.Metric("n", n);
      json.Metric("seed", static_cast<double>(seed));
      json.Metric("breakpoints", static_cast<double>(st.gamma_breakpoints));
      json.Metric("crossings", static_cast<double>(st.curve_crossings));
      json.Metric("mu", static_cast<double>(st.arrangement_vertices));
      json.Metric("faces", st.bounded_faces);
      json.Metric("build_ms", t.Ms());
      mu_avg += static_cast<double>(st.arrangement_vertices) / seeds.size();
    }
    growth.push_back({static_cast<double>(n), mu_avg});
  }
  printf("measured growth exponent of mu vs n: %.2f (worst case 3.0; random "
         "inputs stay near-linear to quadratic)\n",
         bench::LogLogSlope(growth));
  json.StartRow();
  json.Metric("growth_exponent", bench::LogLogSlope(growth));
  return json.Write(args.json_path) ? 0 : 1;
}
